package netchaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	cases := []string{
		"seed",                        // seed without value
		"seed:x",                      // non-numeric seed
		"seed:1.5",                    // fractional seed
		"warp:d=1ms",                  // unknown kind
		"latency:speed=1",             // unknown key
		"latency",                     // latency without magnitude
		"latency:d=1ms,d=2ms",         // duplicate key
		"latency:d",                   // missing =
		"latency:d=-1ms",              // negative duration
		"latency:d=4000",              // > 3600 s
		"reset:after=1.5",             // fractional count
		"reset:after=-1",              // negative count
		"h503:retryafter=5000",        // > 3600 s Retry-After
		"down:every=5",                // every without count
		"down:count=6,every=5",        // count exceeds every
		"blackhole:from=2e12",         // count out of range
		"latency:d=NaN",               // non-finite
		"slow:chunk=0.5",              // fractional chunk
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseAndCanonicalForm(t *testing.T) {
	spec, err := Parse(" seed:7 ; latency:d=2ms ; h503:retryafter=1,from=5,count=2,every=19 ;; down ")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Seed != 7 || len(spec.Faults) != 3 {
		t.Fatalf("spec = %+v", spec)
	}
	want := "seed:7;latency:d=0.002;h503:count=2,every=19,from=5,retryafter=1;down"
	if got := spec.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	again, err := Parse(spec.String())
	if err != nil || again.String() != want {
		t.Fatalf("round trip: %v, %q", err, again.String())
	}
}

func TestWindowActive(t *testing.T) {
	cases := []struct {
		w    Window
		hits []int
		miss []int
	}{
		{Window{}, []int{0, 1, 100}, nil},
		{Window{From: 3}, []int{3, 4, 99}, []int{0, 2}},
		{Window{From: 2, Count: 2}, []int{2, 3}, []int{0, 1, 4, 10}},
		{Window{From: 1, Count: 1, Every: 3}, []int{1, 4, 7}, []int{0, 2, 3, 5, 6}},
		{Window{From: 0, Count: 2, Every: 5}, []int{0, 1, 5, 6, 10}, []int{2, 3, 4, 7, 9}},
	}
	for _, c := range cases {
		for _, i := range c.hits {
			if !c.w.Active(i) {
				t.Errorf("%+v.Active(%d) = false, want true", c.w, i)
			}
		}
		for _, i := range c.miss {
			if c.w.Active(i) {
				t.Errorf("%+v.Active(%d) = true, want false", c.w, i)
			}
		}
	}
}

// chaosClient returns an HTTP client that opens a fresh connection per
// request, so connection indices line up 1:1 with requests.
func chaosClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
}

// startProxy boots a backend + proxy pair and returns the proxy base URL.
func startProxy(t *testing.T, specStr string) (*Proxy, string) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("x", 512))
	}))
	t.Cleanup(backend.Close)
	spec, err := Parse(specStr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", specStr, err)
	}
	p := New(spec, strings.TrimPrefix(backend.URL, "http://"))
	addr, err := p.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(p.Close)
	return p, "http://" + addr
}

func TestProxyCleanRelay(t *testing.T) {
	p, base := startProxy(t, "")
	resp, err := chaosClient().Get(base)
	if err != nil {
		t.Fatalf("GET through clean proxy: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) != 512 {
		t.Fatalf("status %d, %d bytes", resp.StatusCode, len(body))
	}
	ev := p.Events()
	if len(ev) != 1 || ev[0].Fate != "ok" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestProxyH503(t *testing.T) {
	_, base := startProxy(t, "h503:retryafter=2")
	resp, err := chaosClient().Get(base)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "injected") {
		t.Fatalf("body = %q", body)
	}
}

func TestProxyDownResetsConnection(t *testing.T) {
	_, base := startProxy(t, "down")
	if _, err := chaosClient().Get(base); err == nil {
		t.Fatal("GET through down proxy succeeded")
	}
}

func TestProxyResetMidBody(t *testing.T) {
	_, base := startProxy(t, "reset:after=100")
	resp, err := chaosClient().Get(base)
	if err == nil {
		// The reset may land after headers were relayed; then the error
		// surfaces on the body read.
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("full body received through reset proxy")
		}
	}
}

func TestProxyLatency(t *testing.T) {
	_, base := startProxy(t, "latency:d=80ms")
	t0 := time.Now()
	resp, err := chaosClient().Get(base)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(t0); elapsed < 80*time.Millisecond {
		t.Fatalf("request took %v, want >= 80ms", elapsed)
	}
}

func TestProxySlowStillCompletes(t *testing.T) {
	_, base := startProxy(t, "slow:chunk=128,delay=2ms")
	resp, err := chaosClient().Get(base)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || len(body) != 512 {
		t.Fatalf("slow read: %v, %d bytes", rerr, len(body))
	}
}

func TestProxyWindowedFateIsPerConnection(t *testing.T) {
	p, base := startProxy(t, "h503:from=1,count=1,every=3")
	client := chaosClient()
	var statuses []int
	for i := 0; i < 6; i++ {
		resp, err := client.Get(base)
		if err != nil {
			t.Fatalf("GET %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		statuses = append(statuses, resp.StatusCode)
	}
	want := []int{200, 503, 200, 200, 503, 200}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("statuses = %v, want %v", statuses, want)
		}
	}
	var fates []string
	for _, ev := range p.Events() {
		fates = append(fates, ev.Fate)
	}
	wantF := []string{"ok", "h503", "ok", "ok", "h503", "ok"}
	if len(fates) != len(wantF) {
		t.Fatalf("events = %v, want %v", fates, wantF)
	}
	for i := range wantF {
		if fates[i] != wantF[i] {
			t.Fatalf("events = %v, want %v", fates, wantF)
		}
	}
}

func TestProxyDeterministicEventLog(t *testing.T) {
	const spec = "seed:7;latency:d=1ms,jitter=1ms;h503:from=2,count=1,every=3;down:from=4,count=1,every=5"
	run := func() []Event {
		p, base := startProxy(t, spec)
		client := chaosClient()
		for i := 0; i < 10; i++ {
			resp, err := client.Get(base)
			if err != nil {
				continue // down connections error; that's the point
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return p.Events()
	}
	a, b := run(), run()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("event counts = %d/%d, want 10/10", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at conn %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestProxyBlackholeTimesOut(t *testing.T) {
	_, base := startProxy(t, "blackhole")
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   100 * time.Millisecond,
	}
	if _, err := client.Get(base); err == nil {
		t.Fatal("GET through blackhole succeeded")
	}
}

// TestProxyPartitionMatchesPortRange hands the same fleet-wide partition
// spec to two proxies; only the one whose upstream port is in the listed
// range blackholes its traffic — the other relays untouched.
func TestProxyPartitionMatchesPortRange(t *testing.T) {
	backendA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "A")
	}))
	t.Cleanup(backendA.Close)
	backendB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "B")
	}))
	t.Cleanup(backendB.Close)

	targetA := strings.TrimPrefix(backendA.URL, "http://")
	targetB := strings.TrimPrefix(backendB.URL, "http://")
	_, portA, err := net.SplitHostPort(targetA)
	if err != nil {
		t.Fatalf("SplitHostPort(%q): %v", targetA, err)
	}
	spec, err := Parse("partition:plo=" + portA)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}

	proxyA, proxyB := New(spec, targetA), New(spec, targetB)
	addrA, err := proxyA.Start()
	if err != nil {
		t.Fatalf("Start A: %v", err)
	}
	t.Cleanup(proxyA.Close)
	addrB, err := proxyB.Start()
	if err != nil {
		t.Fatalf("Start B: %v", err)
	}
	t.Cleanup(proxyB.Close)

	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   200 * time.Millisecond,
	}
	if _, err := client.Get("http://" + addrA); err == nil {
		t.Fatal("GET through partitioned shard's proxy succeeded")
	}
	resp, err := client.Get("http://" + addrB)
	if err != nil {
		t.Fatalf("GET through unaffected proxy: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "B" {
		t.Fatalf("unaffected proxy body = %q", body)
	}
	if ev := proxyA.Events(); len(ev) != 1 || ev[0].Fate != "partition" {
		t.Fatalf("partitioned proxy events = %+v", ev)
	}
	if ev := proxyB.Events(); len(ev) != 1 || ev[0].Fate != "ok" {
		t.Fatalf("unaffected proxy events = %+v", ev)
	}
}

// Package netchaos is a deterministic fault-injecting TCP reverse proxy:
// the network-plane sibling of internal/faults. Where faults perturbs the
// physics a simulation sees, netchaos perturbs the wire a client sees — a
// proxy sits in front of a real culpeod and injects added latency,
// connection resets mid-body, 503 bursts, blackholes (accept, then
// stall), slow partial writes and flap cycles, all on a parseable,
// seeded schedule such as
//
//	seed:7;latency:d=2ms;h503:retryafter=1,from=5,count=2,every=19;reset:after=200,from=11,count=1,every=23
//
// Determinism is the design center. Faults are scheduled in
// *connection-index* space, not wall-clock time: the window keys
// from/count/every select 0-based accepted-connection indices (mirroring
// faults.Window's at/dur/period in time space), so with HTTP keep-alives
// disabled — one connection per attempt — the fate of every attempt is a
// pure function of the schedule and the attempt order. Two identical
// sequential runs see identical faults, which is what lets the chaos soak
// golden-lock its breaker/failover transition log.
package netchaos

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"culpeo/internal/units"
)

// Kind names one network fault mechanism.
type Kind string

const (
	// Latency delays the upstream connect by d (+ uniform jitter drawn
	// from the seeded per-connection RNG).
	Latency Kind = "latency"
	// Reset forwards the request, then cuts the connection with a TCP RST
	// after `after` response bytes have been relayed — a mid-body reset
	// the client sees as a truncated read.
	Reset Kind = "reset"
	// H503 answers 503 Service Unavailable from the proxy itself (with
	// Retry-After when retryafter > 0); the request never reaches the
	// backend. Indistinguishable on the wire from culpeod shedding load.
	H503 Kind = "h503"
	// Blackhole accepts the connection, swallows the request and never
	// answers; the client's per-attempt deadline is what ends it.
	Blackhole Kind = "blackhole"
	// Slow relays the response in `chunk`-byte pieces separated by
	// `delay` pauses — a degraded link rather than a dead one.
	Slow Kind = "slow"
	// Down closes the connection with a RST the moment it is accepted —
	// windowed with from/count/every it produces flap cycles.
	Down Kind = "down"
	// Partition isolates a subset of the fleet: the clause names an
	// upstream port range (plo..phi), and only a proxy whose backend lives
	// in that range acts on it — accepting the connection, then
	// blackholing it. The same fleet-wide spec can thus be handed to every
	// proxy while cutting off exactly one shard's address range, which is
	// how the shard soak expresses "partition shard 1" in one canonical
	// schedule string.
	Partition Kind = "partition"
)

// Window selects which accepted connections (0-based index) a fault
// applies to. The zero value means "every connection". With Count > 0 the
// fault covers Count consecutive connections starting at From; with Every
// > 0 as well, that burst repeats every Every connections.
type Window struct {
	From  int // first affected connection index
	Count int // connections per burst; 0 = open-ended
	Every int // burst repeat interval; 0 = one burst
}

// Active reports whether the window covers connection index i.
func (w Window) Active(i int) bool {
	if i < w.From {
		return false
	}
	if w.Count <= 0 {
		return true
	}
	j := i - w.From
	if w.Every > 0 {
		j %= w.Every
	}
	return j < w.Count
}

func (w Window) zero() bool { return w.From == 0 && w.Count == 0 && w.Every == 0 }

// Fault is one parsed clause of a Spec.
type Fault struct {
	Kind Kind
	Win  Window

	// Latency. Durations are float64 seconds (exact under the canonical
	// %g round-trip; converted to time.Duration only at use time).
	D      float64 // fixed added delay (s)
	Jitter float64 // uniform extra delay in [0, Jitter) (s)

	// Reset
	After int // response bytes relayed before the RST

	// H503
	RetryAfter int // Retry-After seconds; 0 omits the header

	// Slow
	Chunk int     // bytes per write
	Delay float64 // pause between writes (s)

	// Partition: the upstream port range the clause isolates. A proxy
	// whose backend port falls outside [PLo, PHi] ignores the clause.
	PLo, PHi int
}

// terminal reports whether the fault decides the connection's fate (at
// most one terminal fault applies per connection; Latency and Slow are
// modifiers and compose with any fate).
func (f Fault) terminal() bool {
	switch f.Kind {
	case Reset, H503, Blackhole, Down, Partition:
		return true
	}
	return false
}

// Spec is a full parsed netchaos schedule.
type Spec struct {
	// Seed feeds the per-connection jitter RNG. Parse defaults it to 1
	// when the string has no seed clause, so an explicit seed:0 is
	// honoured.
	Seed   int64
	Faults []Fault
}

// Empty reports whether the spec injects nothing.
func (s Spec) Empty() bool { return len(s.Faults) == 0 }

// kindKeys lists each kind's own keys; the window keys from/count/every
// are accepted by every kind.
var kindKeys = map[Kind][]string{
	Latency:   {"d", "jitter"},
	Reset:     {"after"},
	H503:      {"retryafter"},
	Blackhole: {},
	Slow:      {"chunk", "delay"},
	Down:      {},
	Partition: {"plo", "phi"},
}

// Parse builds a Spec from its string form. The grammar mirrors
// internal/faults:
//
//	spec   = clause *( ";" clause )
//	clause = "seed:" integer
//	       | kind [ ":" key "=" value *( "," key "=" value ) ]
//
// where durations go through units.Parse ("250ms", "1.5s") and counts are
// plain non-negative integers. Unknown kinds, unknown keys, duplicate
// keys, non-finite or out-of-range values and inconsistent windows are
// errors; Parse never panics. An empty string parses to an empty Spec.
func Parse(s string) (Spec, error) {
	spec := Spec{Seed: 1}
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		head, rest, hasRest := strings.Cut(clause, ":")
		head = strings.TrimSpace(strings.ToLower(head))
		if head == "seed" {
			if !hasRest {
				return Spec{}, fmt.Errorf("netchaos: seed clause needs a value (seed:N)")
			}
			v, err := units.Parse(strings.TrimSpace(rest))
			if err != nil || v != math.Trunc(v) || math.Abs(v) > 1e18 {
				return Spec{}, fmt.Errorf("netchaos: bad seed %q", rest)
			}
			spec.Seed = int64(v)
			continue
		}
		f, err := parseClause(Kind(head), rest, hasRest)
		if err != nil {
			return Spec{}, err
		}
		spec.Faults = append(spec.Faults, f)
	}
	return spec, nil
}

func parseClause(kind Kind, rest string, hasRest bool) (Fault, error) {
	allowed, ok := kindKeys[kind]
	if !ok {
		return Fault{}, fmt.Errorf("netchaos: unknown fault kind %q", kind)
	}
	f := Fault{Kind: kind}
	kv := map[string]float64{}
	if hasRest {
		for _, pair := range strings.Split(rest, ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			key, val, ok := strings.Cut(pair, "=")
			if !ok {
				return Fault{}, fmt.Errorf("netchaos: %s: expected key=value, got %q", kind, pair)
			}
			key = strings.TrimSpace(strings.ToLower(key))
			if !keyAllowed(key, allowed) {
				return Fault{}, fmt.Errorf("netchaos: %s: unknown key %q", kind, key)
			}
			x, err := units.Parse(strings.TrimSpace(val))
			if err != nil {
				return Fault{}, fmt.Errorf("netchaos: %s: bad value for %s: %v", kind, key, err)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return Fault{}, fmt.Errorf("netchaos: %s: %s must be finite", kind, key)
			}
			if _, dup := kv[key]; dup {
				return Fault{}, fmt.Errorf("netchaos: %s: duplicate key %q", kind, key)
			}
			kv[key] = x
		}
	}

	count := func(key string) (int, error) {
		v := kv[key]
		if v != math.Trunc(v) || v < 0 || v > 1e9 {
			return 0, fmt.Errorf("netchaos: %s: %s must be an integer in [0,1e9], got %g", kind, key, v)
		}
		return int(v), nil
	}
	dur := func(key string) (float64, error) {
		v := kv[key]
		if v < 0 || v > 3600 {
			return 0, fmt.Errorf("netchaos: %s: %s must be in [0,3600] s, got %g", kind, key, v)
		}
		return v, nil
	}

	var err error
	if f.Win.From, err = count("from"); err != nil {
		return Fault{}, err
	}
	if f.Win.Count, err = count("count"); err != nil {
		return Fault{}, err
	}
	if f.Win.Every, err = count("every"); err != nil {
		return Fault{}, err
	}
	if f.Win.Every > 0 && f.Win.Count <= 0 {
		return Fault{}, fmt.Errorf("netchaos: %s: every needs count", kind)
	}
	if f.Win.Every > 0 && f.Win.Count > f.Win.Every {
		return Fault{}, fmt.Errorf("netchaos: %s: count exceeds every", kind)
	}

	switch kind {
	case Latency:
		if f.D, err = dur("d"); err != nil {
			return Fault{}, err
		}
		if f.Jitter, err = dur("jitter"); err != nil {
			return Fault{}, err
		}
		if f.D == 0 && f.Jitter == 0 {
			return Fault{}, fmt.Errorf("netchaos: latency needs d or jitter")
		}
	case Reset:
		if f.After, err = count("after"); err != nil {
			return Fault{}, err
		}
	case H503:
		if f.RetryAfter, err = count("retryafter"); err != nil {
			return Fault{}, err
		}
		if f.RetryAfter > 3600 {
			return Fault{}, fmt.Errorf("netchaos: h503 retryafter must be <= 3600 s, got %d", f.RetryAfter)
		}
	case Blackhole, Down:
		// window-only fates
	case Partition:
		if f.PLo, err = count("plo"); err != nil {
			return Fault{}, err
		}
		if f.PHi, err = count("phi"); err != nil {
			return Fault{}, err
		}
		if f.PLo < 1 || f.PLo > 65535 {
			return Fault{}, fmt.Errorf("netchaos: partition needs plo in [1,65535], got %d", f.PLo)
		}
		if f.PHi == 0 {
			f.PHi = f.PLo // single-port partition
		}
		if f.PHi < f.PLo || f.PHi > 65535 {
			return Fault{}, fmt.Errorf("netchaos: partition phi %d outside [plo,65535]", f.PHi)
		}
	case Slow:
		if f.Chunk, err = count("chunk"); err != nil {
			return Fault{}, err
		}
		if f.Chunk == 0 {
			f.Chunk = 64
		}
		if f.Delay, err = dur("delay"); err != nil {
			return Fault{}, err
		}
		if f.Delay == 0 {
			f.Delay = 0.001
		}
	}
	return f, nil
}

func keyAllowed(key string, allowed []string) bool {
	switch key {
	case "from", "count", "every":
		return true
	}
	for _, k := range allowed {
		if k == key {
			return true
		}
	}
	return false
}

// String renders the spec in canonical parseable form. Parse(s.String())
// is equivalent to s — the fuzz target holds this round-trip invariant.
func (s Spec) String() string {
	var parts []string
	if s.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed:%d", s.Seed))
	}
	for _, f := range s.Faults {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, ";")
}

// String renders one fault clause in canonical parseable form.
func (f Fault) String() string {
	kv := map[string]float64{}
	switch f.Kind {
	case Latency:
		if f.D > 0 {
			kv["d"] = f.D
		}
		if f.Jitter > 0 {
			kv["jitter"] = f.Jitter
		}
	case Reset:
		if f.After > 0 {
			kv["after"] = float64(f.After)
		}
	case H503:
		if f.RetryAfter > 0 {
			kv["retryafter"] = float64(f.RetryAfter)
		}
	case Slow:
		kv["chunk"] = float64(f.Chunk)
		kv["delay"] = f.Delay
	case Partition:
		kv["plo"] = float64(f.PLo)
		if f.PHi != f.PLo {
			kv["phi"] = float64(f.PHi)
		}
	}
	if !f.Win.zero() {
		kv["from"] = float64(f.Win.From)
		if f.Win.Count > 0 {
			kv["count"] = float64(f.Win.Count)
		}
		if f.Win.Every > 0 {
			kv["every"] = float64(f.Win.Every)
		}
	}
	if len(kv) == 0 {
		return string(f.Kind)
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = fmt.Sprintf("%s=%g", k, kv[k])
	}
	return string(f.Kind) + ":" + strings.Join(pairs, ",")
}

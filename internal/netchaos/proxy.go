// The proxy itself: a TCP reverse proxy that applies one Spec to the
// connections it accepts. Each accepted connection gets a 0-based index;
// the spec's windows decide that connection's fate (first matching
// terminal clause wins — spec order is precedence) and its modifiers
// (latency, slow writes compose with any fate). Everything stochastic
// draws from an RNG derived from (spec seed, connection index), so a
// sequential client sees a bit-reproducible fault sequence.
package netchaos

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event records what the proxy did to one connection ("ok", "down",
// "h503", "blackhole", "reset@N", optionally prefixed "latency+" /
// "slow+").
type Event struct {
	Conn int    `json:"conn"`
	Fate string `json:"fate"`
}

// Proxy is one chaos proxy instance in front of one backend.
type Proxy struct {
	spec       Spec
	target     string // upstream host:port
	targetPort int    // parsed upstream port (0 if unparseable) — partition matching

	ln      net.Listener
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	events  []Event
	nextIdx int
	closed  bool
}

// New builds a proxy for the given upstream address (host:port). Call
// Start to begin accepting.
func New(spec Spec, target string) *Proxy {
	p := &Proxy{spec: spec, target: target, conns: make(map[net.Conn]struct{})}
	if _, portStr, err := net.SplitHostPort(target); err == nil {
		if port, err := strconv.Atoi(portStr); err == nil {
			p.targetPort = port
		}
	}
	return p
}

// Start listens on an ephemeral localhost port and serves until Close.
// It returns the proxy's listen address.
func (p *Proxy) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("netchaos: listen: %w", err)
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the listen address ("" before Start).
func (p *Proxy) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Close stops accepting, severs every live connection and waits for the
// connection handlers to finish.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	ln := p.ln
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.wg.Wait()
}

// Events returns a copy of the per-connection event log in accept order.
func (p *Proxy) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		idx := p.nextIdx
		p.nextIdx++
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handle(conn, idx)
	}
}

// track removes the connection from the live set when its handler exits.
func (p *Proxy) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
	conn.Close()
}

func (p *Proxy) record(idx int, fate string) {
	p.mu.Lock()
	p.events = append(p.events, Event{Conn: idx, Fate: fate})
	p.mu.Unlock()
}

// fate resolves connection idx against the spec: the composed latency
// delay, the slow-write modifier (if any) and the first matching terminal
// fault (nil = clean relay).
func (p *Proxy) fate(idx int) (delay time.Duration, slow *Fault, terminal *Fault) {
	var rng *rand.Rand // lazily built: only jittered latency needs it
	sec := 0.0
	for i := range p.spec.Faults {
		f := &p.spec.Faults[i]
		if !f.Win.Active(idx) {
			continue
		}
		switch {
		case f.Kind == Latency:
			sec += f.D
			if f.Jitter > 0 {
				if rng == nil {
					rng = rand.New(rand.NewSource(p.spec.Seed*1_000_003 + int64(idx)))
				}
				sec += rng.Float64() * f.Jitter
			}
		case f.Kind == Slow:
			if slow == nil {
				slow = f
			}
		case f.Kind == Partition:
			// Fleet-wide clause: terminal only for the proxy whose backend
			// lives in the partitioned port range.
			if terminal == nil && p.targetPort >= f.PLo && p.targetPort <= f.PHi {
				terminal = f
			}
		case terminal == nil:
			terminal = f
		}
	}
	return time.Duration(sec * float64(time.Second)), slow, terminal
}

// rst closes the connection with a TCP RST (SetLinger(0)) so the client
// sees a hard reset, not a graceful FIN.
func rst(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

func (p *Proxy) handle(conn net.Conn, idx int) {
	defer p.wg.Done()
	defer p.untrack(conn)

	delay, slow, terminal := p.fate(idx)
	prefix := ""
	if delay > 0 {
		prefix += "latency+"
		time.Sleep(delay)
	}
	if slow != nil {
		prefix += "slow+"
	}

	if terminal != nil {
		switch terminal.Kind {
		case Down:
			p.record(idx, prefix+"down")
			rst(conn)
			return
		case Blackhole:
			p.record(idx, prefix+"blackhole")
			// Swallow whatever the client sends and never answer; the
			// client's per-attempt deadline ends this, or Close does.
			io.Copy(io.Discard, conn)
			return
		case Partition:
			// The shard is cut off from this client: the connection opens
			// (the host is up) but nothing ever comes back.
			p.record(idx, prefix+"partition")
			io.Copy(io.Discard, conn)
			return
		case H503:
			p.record(idx, prefix+"h503")
			p.answer503(conn, terminal.RetryAfter)
			return
		case Reset:
			p.record(idx, prefix+"reset@"+strconv.Itoa(terminal.After))
			p.relay(conn, slow, terminal.After)
			return
		}
	}
	p.record(idx, prefix+"ok")
	p.relay(conn, slow, -1)
}

// answer503 reads one HTTP request off the connection and answers a
// culpeod-shaped 503 without involving the backend.
func (p *Proxy) answer503(conn net.Conn, retryAfter int) {
	br := bufio.NewReader(conn)
	req, err := http.ReadRequest(br)
	if err != nil {
		rst(conn)
		return
	}
	io.Copy(io.Discard, req.Body)
	req.Body.Close()
	body := `{"error":"injected: service unavailable"}` + "\n"
	resp := "HTTP/1.1 503 Service Unavailable\r\n" +
		"Content-Type: application/json\r\n" +
		"Content-Length: " + strconv.Itoa(len(body)) + "\r\n"
	if retryAfter > 0 {
		resp += "Retry-After: " + strconv.Itoa(retryAfter) + "\r\n"
	}
	resp += "Connection: close\r\n\r\n" + body
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	io.WriteString(conn, resp)
	conn.Close()
}

// relay tunnels bytes both ways. resetAfter >= 0 cuts the connection with
// a RST once that many response bytes have been relayed; slow != nil
// throttles the response into chunked, delayed writes.
func (p *Proxy) relay(conn net.Conn, slow *Fault, resetAfter int) {
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		rst(conn)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		up.Close()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	defer p.untrack(up)

	// Request direction: plain copy; closing either side unblocks it.
	go func() {
		io.Copy(up, conn)
		// Half-close toward the backend so it sees EOF if the client is
		// done writing; full close happens when the handler returns.
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	// Response direction, with the fault hooks.
	var dst io.Writer = conn
	if slow != nil {
		dst = &slowWriter{w: conn, chunk: slow.Chunk, delay: time.Duration(slow.Delay * float64(time.Second))}
	}
	if resetAfter >= 0 {
		io.CopyN(dst, up, int64(resetAfter))
		rst(conn)
		return
	}
	io.Copy(dst, up)
	conn.Close()
}

// slowWriter drips bytes to w in chunk-sized writes separated by delay.
type slowWriter struct {
	w     io.Writer
	chunk int
	delay time.Duration
}

func (s *slowWriter) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		n := s.chunk
		if n > len(b) {
			n = len(b)
		}
		wrote, err := s.w.Write(b[:n])
		total += wrote
		if err != nil {
			return total, err
		}
		b = b[n:]
		if len(b) > 0 {
			time.Sleep(s.delay)
		}
	}
	return total, nil
}

package apps

import (
	"math/rand"
	"testing"

	"culpeo/internal/sched"
)

func TestAppConstruction(t *testing.T) {
	for _, app := range All() {
		if app.Name == "" {
			t.Error("unnamed app")
		}
		if len(app.Tasks) == 0 {
			t.Errorf("%s has no tasks", app.Name)
		}
		if app.Background == nil {
			t.Errorf("%s has no background task", app.Name)
		}
		if app.Harvest <= 0 {
			t.Errorf("%s has no harvest", app.Name)
		}
		if err := app.Model().Validate(); err != nil {
			t.Errorf("%s model invalid: %v", app.Name, err)
		}
		streams := app.Streams(DefaultHorizon, rand.New(rand.NewSource(1)))
		if len(streams) == 0 {
			t.Errorf("%s has no streams", app.Name)
		}
		taskIDs := map[string]bool{}
		for _, tk := range app.Tasks {
			taskIDs[string(tk.ID)] = true
		}
		for _, s := range streams {
			if len(s.Arrivals) == 0 {
				t.Errorf("%s/%s has no arrivals in 5 minutes", app.Name, s.Name)
			}
			if s.Deadline <= 0 {
				t.Errorf("%s/%s has no deadline", app.Name, s.Name)
			}
			for _, id := range s.Chain {
				if !taskIDs[string(id)] {
					t.Errorf("%s/%s chain references unknown task %s", app.Name, s.Name, id)
				}
			}
		}
	}
}

func TestBufferSizes(t *testing.T) {
	ps := PeriodicSensing()
	rr := ResponsiveReporting()
	if got := ps.Config.Storage.TotalCapacitance(); got > 16e-3 {
		t.Errorf("PS buffer = %g, want 15 mF-class", got)
	}
	if got := rr.Config.Storage.TotalCapacitance(); got < 40e-3 {
		t.Errorf("RR buffer = %g, want 45 mF-class", got)
	}
}

func TestRateRegimes(t *testing.T) {
	if psPeriod(Slow) <= psPeriod(Achievable) || psPeriod(Achievable) <= psPeriod(TooFast) {
		t.Error("PS periods not ordered slow > achievable > too-fast")
	}
	if rrLambda(Slow) <= rrLambda(Achievable) || rrLambda(Achievable) <= rrLambda(TooFast) {
		t.Error("RR lambdas not ordered")
	}
	for r, want := range map[Rate]string{Achievable: "achievable", Slow: "slow", TooFast: "too-fast"} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
	if Rate(9).String() != "rate(?)" {
		t.Error("unknown rate should render placeholder")
	}
}

func TestDevicesAreIsolated(t *testing.T) {
	app := PeriodicSensing()
	d1, err := app.NewDevice(sched.NewCatNapPolicy())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := app.NewDevice(sched.NewCatNapPolicy())
	if err != nil {
		t.Fatal(err)
	}
	d1.Sys.DischargeTo(1.7)
	if d2.Sys.Config().Storage.Main().Voltage < 2.5 {
		t.Error("devices share storage state")
	}
	if app.Config.Storage.Main().Voltage < 2.5 {
		t.Error("app template storage mutated")
	}
}

func TestFigure12Shape(t *testing.T) {
	// Shortened (90 s) version of the Figure 12 experiment: Culpeo must
	// capture (nearly) all events while CatNap loses a large fraction to
	// ESR-induced power failures. Uses PS, the most deterministic app.
	if testing.Short() {
		t.Skip("application simulation is seconds-long")
	}
	const horizon = 90
	app := PeriodicSensing()

	runApp := func(pol sched.Policy) sched.Metrics {
		dev, err := app.NewDevice(pol)
		if err != nil {
			t.Fatal(err)
		}
		streams := app.Streams(horizon, rand.New(rand.NewSource(1)))
		met, err := dev.Run(streams, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return met
	}

	cat := runApp(sched.NewCatNapPolicy())
	cul := runApp(sched.NewCulpeoPolicy(app.Model()))

	catRate := cat.PerStream["PS"].CaptureRate()
	culRate := cul.PerStream["PS"].CaptureRate()
	if culRate < 95 {
		t.Errorf("Culpeo PS capture = %.0f%%, want ≈100%%", culRate)
	}
	if catRate > culRate-25 {
		t.Errorf("CatNap PS capture = %.0f%% vs Culpeo %.0f%% — expected a large gap", catRate, culRate)
	}
	if cat.PowerFailures == 0 {
		t.Error("CatNap should suffer ESR-induced power failures")
	}
	if cul.PowerFailures != 0 {
		t.Errorf("Culpeo suffered %d power failures", cul.PowerFailures)
	}
}

// Package apps defines the three event-driven applications of the paper's
// application-level evaluation (Section VI-B):
//
//   - Periodic Sensing (PS): 32 IMU samples every 4.5 s on a 15 mF buffer,
//     with a background photoresistor-averaging task. An event is lost when
//     the intersample deadline is missed.
//   - Responsive Reporting (RR): GPIO interrupts arriving as a Poisson
//     process (λ = 45 s) trigger a three-task chain — read the IMU, encrypt
//     the samples, transmit over BLE and listen 2 s for a response — with a
//     3 s deadline. Background photoresistor task.
//   - Noise Monitoring & Reporting (NMR): 256 microphone samples at 12 kHz
//     every 7 s; a background FFT; Poisson (λ = 30 s) interrupts trigger a
//     BLE report plus listen with a 15 s deadline.
//
// Each App owns its buffer configuration, harvested power, task set and
// event streams, so experiment drivers can run it under any scheduling
// policy.
package apps

import (
	"math/rand"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/sched"
)

// DefaultHorizon is the paper's trial length: five minutes.
const DefaultHorizon = 300.0

// DefaultHarvest is the constant, weak harvested power of the evaluation
// setup, matched to a small solar harvester.
const DefaultHarvest = 2.5e-3

// AppDT is the integration step used for application-scale simulations:
// coarser than profiling runs (millisecond-scale loads tolerate it) so a
// five-minute trial stays fast.
const AppDT = 40e-6

// Rate names the event-frequency regimes of Figure 13.
type Rate int

const (
	// Achievable is the degraded rate at which the application is feasible.
	Achievable Rate = iota
	// Slow halves the event frequency.
	Slow
	// TooFast exceeds what the harvester can sustain.
	TooFast
)

func (r Rate) String() string {
	switch r {
	case Achievable:
		return "achievable"
	case Slow:
		return "slow"
	case TooFast:
		return "too-fast"
	default:
		return "rate(?)"
	}
}

// App bundles everything needed to run one application under a policy.
type App struct {
	Name       string
	Tasks      []sched.Task
	Background *sched.Task
	// Streams builds the event streams for a horizon using the rng (Poisson
	// arrivals are deterministic per seed).
	Streams func(horizon float64, rng *rand.Rand) []sched.Stream
	// Config is the app's power-system configuration (PS uses a smaller
	// buffer).
	Config  powersys.Config
	Harvest float64
}

// NewDevice builds a fresh device for the app under the given policy.
func (a App) NewDevice(policy sched.Policy) (*sched.Device, error) {
	cfg := a.Config
	cfg.Storage = a.Config.Storage.Clone()
	sys, err := powersys.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.ChargeTo(cfg.VHigh); err != nil {
		return nil, err
	}
	return sched.NewDevice(sys, a.Harvest, a.Tasks, a.Background, policy)
}

// Model returns the Culpeo power model for the app's configuration.
func (a App) Model() core.PowerModel {
	cfg := a.Config
	return core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   capacitor.Flat(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
}

// capybaraWith returns the Capybara configuration with an app-specific
// bank capacitance (built from the same 7.5 mF supercap parts) and the
// application-scale timestep.
func capybaraWith(bankC float64) powersys.Config {
	cfg := powersys.Capybara()
	part := capacitor.Part{
		PartNumber: "CPX3225A752D", Tech: capacitor.Supercap,
		C: 7.5e-3, ESR: 30, Volume: 7.04, DCL: 3.3e-9, MaxVoltage: 2.7,
	}
	bank, err := capacitor.AssembleBank(part, bankC)
	if err != nil {
		panic(err) // unreachable: constants
	}
	net, err := capacitor.NewNetwork(bank.Branch("main", cfg.VHigh))
	if err != nil {
		panic(err)
	}
	cfg.Storage = net
	cfg.DT = AppDT
	return cfg
}

// psPeriod returns Periodic Sensing's sampling period for a rate regime
// (Section VII-C: 6 s slow, 4.5 s achievable, 3 s too fast).
func psPeriod(r Rate) float64 {
	switch r {
	case Slow:
		return 6.0
	case TooFast:
		return 3.0
	default:
		return 4.5
	}
}

// rrLambda returns Responsive Reporting's mean inter-arrival for a rate
// regime (60 s slow, 45 s achievable, 30 s too fast).
func rrLambda(r Rate) float64 {
	switch r {
	case Slow:
		return 60.0
	case TooFast:
		return 30.0
	default:
		return 45.0
	}
}

// PeriodicSensing builds PS at the achievable rate.
func PeriodicSensing() App { return PeriodicSensingAt(Achievable) }

// PeriodicSensingAt builds PS at a chosen rate regime.
func PeriodicSensingAt(r Rate) App {
	period := psPeriod(r)
	imu := sched.Task{ID: "imu-read", Profile: load.IMURead(32), Priority: sched.High}
	bg := sched.Task{ID: "photo-avg", Profile: load.PhotoRead(), Priority: sched.Low}
	return App{
		Name:       "PS",
		Tasks:      []sched.Task{imu},
		Background: &bg,
		Streams: func(horizon float64, _ *rand.Rand) []sched.Stream {
			return []sched.Stream{{
				Name:     "PS",
				Arrivals: sched.PeriodicArrivals(period, horizon),
				Chain:    []core.TaskID{"imu-read"},
				Deadline: period, // the intersample deadline
			}}
		},
		Config: capybaraWith(15e-3), // PS explores a smaller buffer
		// PS's harvester is provisioned so the 4.5 s rate is achievable with
		// margin while the 3 s "too fast" rate exceeds the energy income
		// (Section VI-B degrades the event frequency until feasible).
		Harvest: 1.8e-3,
	}
}

// ResponsiveReporting builds RR at the achievable rate.
func ResponsiveReporting() App { return ResponsiveReportingAt(Achievable) }

// ResponsiveReportingAt builds RR at a chosen rate regime.
func ResponsiveReportingAt(r Rate) App {
	lambda := rrLambda(r)
	imu := sched.Task{ID: "imu-read", Profile: load.IMURead(32), Priority: sched.High}
	enc := sched.Task{ID: "encrypt", Profile: load.Encrypt(192), Priority: sched.High}
	// The report is decomposed into transmit and listen tasks: profiling the
	// high-current transmit separately lets its rebound be observed cleanly,
	// which the V_safe_multi composition then combines with the listen's
	// energy cost.
	tx := sched.Task{ID: "ble-tx", Profile: load.BLERadio(), Priority: sched.High}
	listen := sched.Task{ID: "ble-listen", Profile: load.BLEListen(2.0), Priority: sched.High}
	bg := sched.Task{ID: "photo-avg", Profile: load.PhotoRead(), Priority: sched.Low}
	return App{
		Name:       "RR",
		Tasks:      []sched.Task{imu, enc, tx, listen},
		Background: &bg,
		Streams: func(horizon float64, rng *rand.Rand) []sched.Stream {
			return []sched.Stream{{
				Name:     "RR",
				Arrivals: sched.PoissonArrivals(rng, lambda, horizon),
				Chain:    []core.TaskID{"imu-read", "encrypt", "ble-tx", "ble-listen"},
				Deadline: 3.0,
			}}
		},
		Config:  capybaraWith(45e-3),
		Harvest: DefaultHarvest,
	}
}

// NoiseMonitoring builds NMR (one rate regime only; Figure 12).
func NoiseMonitoring() App {
	mic := sched.Task{ID: "mic-read", Profile: load.MicRead(256, 12e3), Priority: sched.High}
	tx := sched.Task{ID: "ble-tx", Profile: load.BLERadio(), Priority: sched.High}
	listen := sched.Task{ID: "ble-listen", Profile: load.BLEListen(2.0), Priority: sched.High}
	bg := sched.Task{ID: "fft", Profile: load.FFT(256), Priority: sched.Low}
	return App{
		Name:       "NMR",
		Tasks:      []sched.Task{mic, tx, listen},
		Background: &bg,
		Streams: func(horizon float64, rng *rand.Rand) []sched.Stream {
			return []sched.Stream{
				{
					Name:     "NMR-mic",
					Arrivals: sched.PeriodicArrivals(7.0, horizon),
					Chain:    []core.TaskID{"mic-read"},
					Deadline: 7.0,
				},
				{
					Name:     "NMR-BLE",
					Arrivals: sched.PoissonArrivals(rng, 30.0, horizon),
					Chain:    []core.TaskID{"ble-tx", "ble-listen"},
					Deadline: 15.0,
				},
			}
		},
		Config:  capybaraWith(45e-3),
		Harvest: DefaultHarvest,
	}
}

// All returns the full application suite of Figure 12.
func All() []App {
	return []App{PeriodicSensing(), ResponsiveReporting(), NoiseMonitoring()}
}

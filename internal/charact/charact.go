// Package charact implements the power-system characterization procedures
// of Section IV-B. Datasheet ESR values are too inaccurate for Culpeo-PG —
// "the ESR experienced by a load changes with the load's frequency ... We
// instead derive a curve of ESR versus frequency via direct measurement of
// the power system" — so this package measures:
//
//   - the effective ESR-versus-frequency curve, by applying current pulses
//     of different widths and observing the rebounding component of the
//     terminal-voltage drop (the in-silico version of an impedance-analyzer
//     sweep);
//   - the output booster's linear efficiency model η(V) = mV + b, by
//     loading the system at several buffer voltages and fitting
//     P_out/(I_in·V_t) with least squares.
//
// Characterization runs on isolated clones of the configuration, so it
// never perturbs a live system.
package charact

import (
	"errors"
	"fmt"
	"math"

	"culpeo/internal/booster"
	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/trace"
)

// DefaultPulseWidths is the impedance sweep's pulse-width grid, spanning
// the paper's load range (1 ms – 1 s, i.e. 0.5 Hz – 500 Hz equivalent).
func DefaultPulseWidths() []float64 {
	return []float64{1e-3, 3e-3, 10e-3, 30e-3, 100e-3, 300e-3, 1.0}
}

// clone isolates a configuration.
func clone(cfg powersys.Config) powersys.Config {
	out := cfg
	out.Storage = cfg.Storage.Clone()
	return out
}

// MeasureESRAt applies one current pulse of the given width and test
// current and returns the effective ESR seen at that pulse width: the
// rebounding component of the drop divided by the booster's input current
// at the minimum.
func MeasureESRAt(cfg powersys.Config, width, iTest float64) (float64, error) {
	if width <= 0 || iTest <= 0 {
		return 0, fmt.Errorf("charact: non-positive width %g or current %g", width, iTest)
	}
	c := clone(cfg)
	sys, err := powersys.New(c)
	if err != nil {
		return 0, err
	}
	if err := sys.ChargeTo(c.VHigh); err != nil {
		return 0, err
	}
	sys.Monitor().Force(true)
	rec := trace.NewRecorder(1)
	res := sys.Run(load.Uniform{ID: "esr-probe", ILoad: iTest, TPulse: width},
		powersys.RunOptions{Recorder: rec})
	if !res.Completed {
		return 0, fmt.Errorf("charact: probe pulse (%.3g A, %.3g s) browned out — lower the test current", iTest, width)
	}
	// Find the input current at the minimum-voltage sample.
	var iin float64
	min := math.Inf(1)
	for _, s := range rec.Samples() {
		if s.VTerm < min {
			min = s.VTerm
			iin = s.IIn
		}
	}
	if iin <= 0 {
		return 0, errors.New("charact: no input current observed")
	}
	vdelta := res.VFinal - res.VMin
	if vdelta < 0 {
		vdelta = 0
	}
	return vdelta / iin, nil
}

// MeasureESRCurve sweeps pulse widths and returns the measured
// ESR-versus-frequency curve (frequency = 1/(2·width), matching
// capacitor.ESRCurve.ForPulseWidth). Widths defaults to
// DefaultPulseWidths; iTest defaults to 10 mA.
func MeasureESRCurve(cfg powersys.Config, widths []float64, iTest float64) (*capacitor.ESRCurve, error) {
	if len(widths) == 0 {
		widths = DefaultPulseWidths()
	}
	if iTest <= 0 {
		iTest = 10e-3
	}
	points := make([]capacitor.ESRPoint, 0, len(widths))
	for _, w := range widths {
		r, err := MeasureESRAt(cfg, w, iTest)
		if err != nil {
			return nil, err
		}
		points = append(points, capacitor.ESRPoint{Hz: 1 / (2 * w), Ohm: r})
	}
	return capacitor.NewESRCurve(points...)
}

// MeasureEfficiencyAt loads the system with iTest at buffer voltage v and
// returns the observed conversion efficiency η = P_out/(I_in·V_t) averaged
// over the pulse.
func MeasureEfficiencyAt(cfg powersys.Config, v, iTest float64) (float64, error) {
	if v <= cfg.VOff || v > cfg.VHigh {
		return 0, fmt.Errorf("charact: probe voltage %g outside window", v)
	}
	c := clone(cfg)
	sys, err := powersys.New(c)
	if err != nil {
		return 0, err
	}
	if err := sys.ChargeTo(c.VHigh); err != nil {
		return 0, err
	}
	if err := sys.DischargeTo(v); err != nil {
		return 0, err
	}
	sys.Monitor().Force(true)
	rec := trace.NewRecorder(1)
	res := sys.Run(load.Uniform{ID: "eff-probe", ILoad: iTest, TPulse: 5e-3},
		powersys.RunOptions{Recorder: rec, SkipRebound: true})
	if !res.Completed {
		return 0, fmt.Errorf("charact: efficiency probe browned out at %g V", v)
	}
	var sum float64
	var n int
	pout := cfg.Output.VOut * iTest
	for _, s := range rec.Samples() {
		if s.IIn <= 0 || s.VTerm <= 0 {
			continue
		}
		sum += pout / (s.IIn * s.VTerm)
		n++
	}
	if n == 0 {
		return 0, errors.New("charact: no usable efficiency samples")
	}
	eta := sum / float64(n)
	if eta <= 0 || eta > 1 {
		return 0, fmt.Errorf("charact: implausible efficiency %g", eta)
	}
	return eta, nil
}

// MeasureEfficiencyLine probes several buffer voltages across the operating
// window and least-squares fits η(V) = mV + b. Points defaults to 6.
func MeasureEfficiencyLine(cfg powersys.Config, points int, iTest float64) (booster.EfficiencyLine, error) {
	if points < 2 {
		points = 6
	}
	if iTest <= 0 {
		iTest = 10e-3
	}
	var xs, ys []float64
	// Keep probes clear of the brown-out cliff: the probe's own ESR drop
	// (I_in·R, roughly double the load current through a high-ESR bank)
	// must not take the terminal below V_off mid-measurement.
	lo := cfg.VOff + 0.15
	hi := cfg.VHigh - 0.02
	for i := 0; i < points; i++ {
		v := lo + (hi-lo)*float64(i)/float64(points-1)
		eta, err := MeasureEfficiencyAt(cfg, v, iTest)
		if err != nil {
			return booster.EfficiencyLine{}, err
		}
		xs = append(xs, v)
		ys = append(ys, eta)
	}
	m, b := leastSquares(xs, ys)
	return booster.EfficiencyLine{M: m, B: b, Min: 0.05, Max: 0.98}, nil
}

// leastSquares fits y = m·x + b.
func leastSquares(xs, ys []float64) (m, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	m = (n*sxy - sx*sy) / den
	b = (sy - m*sx) / n
	return m, b
}

// Characterize measures everything Culpeo-PG needs from a power system and
// assembles the PowerModel: capacitance from the design (datasheet), ESR
// curve and efficiency line from measurement. This is the full §IV-B
// workflow: "the power system's ESR characteristics are profiled
// independently of the load".
func Characterize(cfg powersys.Config) (core.PowerModel, error) {
	esr, err := MeasureESRCurve(cfg, nil, 0)
	if err != nil {
		return core.PowerModel{}, err
	}
	eff, err := MeasureEfficiencyLine(cfg, 0, 0)
	if err != nil {
		return core.PowerModel{}, err
	}
	return core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   esr,
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   eff,
	}, nil
}

package charact

import (
	"math"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

func TestMeasureESRFlatSystem(t *testing.T) {
	// A single-branch bank has frequency-independent ESR; the measurement
	// must recover it across the sweep.
	cfg := powersys.Capybara() // 5 Ω net
	curve, err := MeasureESRCurve(cfg, nil, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, hz := range []float64{1, 10, 100} {
		got := curve.At(hz)
		if math.Abs(got-5.0) > 0.6 {
			t.Errorf("measured ESR at %g Hz = %g, want ≈5 Ω", hz, got)
		}
	}
}

func TestMeasureESRTwoBranchDescends(t *testing.T) {
	// A two-branch supercap model shows lower ESR to fast pulses; the
	// measured curve must descend with frequency.
	branches := capacitor.SupercapBranches("sc", 45e-3, 6.0, 1.0, 0.05, 2.56)
	net, err := capacitor.NewNetwork(branches...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := powersys.Capybara()
	cfg.Storage = net
	curve, err := MeasureESRCurve(cfg, nil, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	slow := curve.ForPulseWidth(1.0)  // 0.5 Hz
	fast := curve.ForPulseWidth(1e-3) // 500 Hz
	if !(slow > fast+0.5) {
		t.Errorf("slow ESR %g should exceed fast ESR %g", slow, fast)
	}
	// The slow limit approaches the bulk resistance; the fast limit
	// approaches the parallel combination (6∥1 ≈ 0.86 Ω).
	if slow < 4.0 || slow > 7.0 {
		t.Errorf("slow-limit ESR = %g, want near the 6 Ω bulk", slow)
	}
	if fast > 3.0 {
		t.Errorf("fast-limit ESR = %g, want near the parallel combination", fast)
	}
}

func TestMeasureESRErrors(t *testing.T) {
	cfg := powersys.Capybara()
	if _, err := MeasureESRAt(cfg, 0, 10e-3); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := MeasureESRAt(cfg, 10e-3, 0); err == nil {
		t.Error("zero current accepted")
	}
	// A test current far past the deliverable power must report brown-out.
	if _, err := MeasureESRAt(cfg, 100e-3, 1.0); err == nil {
		t.Error("brown-out probe accepted")
	}
}

func TestMeasureEfficiencyLine(t *testing.T) {
	cfg := powersys.Capybara()
	line, err := MeasureEfficiencyLine(cfg, 6, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	truth := cfg.Output.Efficiency
	// The fitted line tracks the configured one across the window. (The
	// measurement sees η at the dropped terminal voltage, so compare by
	// evaluation, with tolerance for the ESR-induced shift.)
	for _, v := range []float64{1.8, 2.1, 2.4} {
		if math.Abs(line.At(v)-truth.At(v)) > 0.05 {
			t.Errorf("fitted η(%g) = %g, configured %g", v, line.At(v), truth.At(v))
		}
	}
	// Monotone increasing fit (positive slope), as Culpeo-R assumes.
	if line.M <= 0 {
		t.Errorf("fitted slope = %g, want positive", line.M)
	}
}

func TestMeasureEfficiencyErrors(t *testing.T) {
	cfg := powersys.Capybara()
	if _, err := MeasureEfficiencyAt(cfg, cfg.VOff-0.1, 10e-3); err == nil {
		t.Error("probe below window accepted")
	}
	if _, err := MeasureEfficiencyAt(cfg, cfg.VHigh+0.1, 10e-3); err == nil {
		t.Error("probe above window accepted")
	}
}

func TestCharacterizeEndToEnd(t *testing.T) {
	// The fully measured model must produce safe PG estimates against the
	// same system's ground truth — closing the §IV-B loop without ever
	// reading the "datasheet" ESR.
	cfg := powersys.Capybara()
	model, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	h, err := harness.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pg := profiler.PG{Model: model}
	for _, task := range []load.Profile{
		load.NewPulse(25e-3, 10e-3),
		load.NewUniform(10e-3, 100e-3),
		load.BLERadio(),
	} {
		gt, err := h.GroundTruth(task)
		if err != nil {
			t.Fatal(err)
		}
		est, err := pg.Estimate(task)
		if err != nil {
			t.Fatal(err)
		}
		if harness.Classify(est.VSafe, gt) == harness.Unsafe {
			t.Errorf("%s: measured-model estimate %g unsafe vs truth %g", task.Name(), est.VSafe, gt)
		}
		if h.ErrorPercent(est.VSafe, gt) > 20 {
			t.Errorf("%s: measured-model estimate overshoots: %+.1f%%",
				task.Name(), h.ErrorPercent(est.VSafe, gt))
		}
	}
}

func TestLeastSquares(t *testing.T) {
	m, b := leastSquares([]float64{0, 1, 2}, []float64{1, 3, 5})
	if math.Abs(m-2) > 1e-12 || math.Abs(b-1) > 1e-12 {
		t.Errorf("fit = %g, %g; want 2, 1", m, b)
	}
	// Degenerate: all same x → slope 0, intercept mean.
	m, b = leastSquares([]float64{1, 1}, []float64{2, 4})
	if m != 0 || b != 3 {
		t.Errorf("degenerate fit = %g, %g", m, b)
	}
}

func TestSupercapBranches(t *testing.T) {
	bs := capacitor.SupercapBranches("sc", 45e-3, 6, 1, 0.05, 2.4)
	if len(bs) != 2 {
		t.Fatalf("branches = %d", len(bs))
	}
	if math.Abs(bs[0].C+bs[1].C-45e-3) > 1e-12 {
		t.Error("capacitance not conserved")
	}
	if bs[0].ESR != 6 || bs[1].ESR != 1 {
		t.Error("ESRs misassigned")
	}
	// Degenerate fractions.
	if got := capacitor.SupercapBranches("sc", 1e-3, 6, 1, 0, 2.4); len(got) != 1 {
		t.Error("zero fraction should collapse to one branch")
	}
	if got := capacitor.SupercapBranches("sc", 1e-3, 6, 1, 0.9, 2.4); math.Abs(got[1].C-0.5e-3) > 1e-12 {
		t.Error("fraction should clamp at 0.5")
	}
	if got := capacitor.SupercapBranches("sc", 1e-3, 6, 1, -0.2, 2.4); len(got) != 1 {
		t.Error("negative fraction should clamp to zero")
	}
}

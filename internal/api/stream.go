// The streaming wire contract: the session tier's request bodies, the
// server-sent-event (SSE) update frames pushed down a /v1/stream
// connection, and the SSE encoder/scanner both sides share.
//
// Transport is SSE over a plain POST (not WebSocket): the downlink is the
// only long-lived direction — observations go up as ordinary bounded POSTs
// through the admission queue — and SSE rides on stdlib net/http with no
// framing code beyond the ~100 lines below, keeps the proxy/chaos tooling
// (netchaos speaks TCP) and h2c-free HTTP/1.1 semantics unchanged, and
// stays debuggable with curl. DESIGN.md §16 records the full rationale.
package api

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Stream endpoint paths, shared with internal/serve's mux and the client.
const (
	PathStream    = "/v1/stream"
	PathStreamObs = "/v1/stream/obs"
)

// Stream protocol bounds. They are wire contract, not server tuning: a
// request beyond them is a 400 on every server, so they live here where
// both sides (and the fuzzer) see one definition.
const (
	// MaxStreamRing caps a session's observation window. Rings are
	// pre-allocated per session, so this bounds per-session memory.
	MaxStreamRing = 256
	// MaxStreamObsBatch caps observations in one /v1/stream/obs body.
	MaxStreamObsBatch = 1024
	// MaxStreamDevice caps the device identifier length.
	MaxStreamDevice = 64
	// MaxSSELineBytes bounds one SSE line; a peer streaming an unterminated
	// line must not grow memory without bound.
	MaxSSELineBytes = 1 << 20
)

// ValidStreamDevice reports whether a device identifier is well-formed:
// 1..MaxStreamDevice bytes of [A-Za-z0-9._:-] (the request-ID alphabet, so
// device names are safe to echo into logs and metrics).
func ValidStreamDevice(device string) bool {
	if len(device) == 0 || len(device) > MaxStreamDevice {
		return false
	}
	for i := 0; i < len(device); i++ {
		c := device[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// StreamObservation is one Culpeo-R voltage observation with its
// per-session sequence number. Seq starts at 1 and increases strictly; the
// server drops any observation at or below the session's high-water mark,
// which is what makes observation uploads (and their retries) idempotent.
type StreamObservation struct {
	Seq    uint64  `json:"seq"`
	VStart float64 `json:"v_start"`
	VMin   float64 `json:"v_min"`
	VFinal float64 `json:"v_final"`
	// Failed marks an unexpected power failure during the observed run; it
	// drives the session's AdaptiveMargin (inflate on failure, decay on
	// sustained success).
	Failed bool `json:"failed,omitempty"`
}

// StreamOpenRequest is the body of POST /v1/stream: attach (or resume) the
// device's session and hold the connection open for update events.
type StreamOpenRequest struct {
	Device string    `json:"device"`
	Power  PowerSpec `json:"power"`
	// Ring is the requested observation-window size (0: server default;
	// capped at MaxStreamRing). A resume must match the live session's ring
	// or leave it 0.
	Ring int `json:"ring,omitempty"`
	// Replay is the client's ring tail, replayed on reconnect so a server
	// that lost the session (restart, eviction, failover to another
	// backend) rebuilds it; already-seen sequence numbers dedupe away. The
	// rebuilt estimate is bit-identical to a from-scratch fold of the same
	// window.
	Replay []StreamObservation `json:"replay,omitempty"`
	// LastEventSeq is the last update event the client saw (diagnostic:
	// echoed into the resume snapshot's log line; events are not replayed —
	// the snapshot update carries the complete current state).
	LastEventSeq uint64 `json:"last_event_seq,omitempty"`
}

// StreamObsRequest is the body of POST /v1/stream/obs: fold a batch of
// observations into the device's session (and optionally close it). The
// refined estimate comes back on the stream as an update event; the POST
// response only acknowledges the fold.
type StreamObsRequest struct {
	Device       string              `json:"device"`
	Observations []StreamObservation `json:"observations,omitempty"`
	// Close ends the session after folding: the stream receives a terminal
	// update (final=true, reason "close") and the session becomes a
	// tombstone that replays the terminal to late resumes.
	Close bool `json:"close,omitempty"`
}

// StreamObsResponse acknowledges a fold.
type StreamObsResponse struct {
	// LastSeq is the session's observation high-water mark after the fold.
	LastSeq uint64 `json:"last_seq"`
	// Duplicates counts observations dropped as already-seen (retries).
	Duplicates int `json:"duplicates,omitempty"`
	// Window is the live observation-window population.
	Window int `json:"window"`
	// Closed reports the session is (now) closed.
	Closed bool `json:"closed,omitempty"`
}

// StreamUpdate is one downlink event: the continuously refined Culpeo-R
// estimate over the session's observation window, plus the adaptive launch
// margin. Estimate fields are float64 at full JSON round-trip precision —
// the parity gates compare them with math.Float64bits.
type StreamUpdate struct {
	// Seq numbers update events per session, monotonically.
	Seq uint64 `json:"seq"`
	// ObsSeq is the observation high-water mark this update reflects.
	ObsSeq uint64 `json:"obs_seq"`
	// Window is how many observations the estimate folds over.
	Window int `json:"window"`
	// VSafe/VDelta/VE mirror core.Estimate: the window's worst-case
	// (maximum-V_safe) runtime estimate.
	VSafe  float64 `json:"v_safe"`
	VDelta float64 `json:"v_delta"`
	VE     float64 `json:"v_e"`
	// Margin is the session's current AdaptiveMargin guard voltage, and
	// Launch = VSafe + Margin is the dispatch threshold the device should
	// hold for.
	Margin float64 `json:"margin"`
	Launch float64 `json:"launch"`
	// Final marks a terminal event: the stream ends after it. Reason is
	// "close" (client closed the session), "drain" (server draining; the
	// session survives elsewhere — resume on another backend) or
	// "superseded" (a newer connection attached for this device).
	Final  bool   `json:"final,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// StreamEventUpdate is the SSE event name update frames arrive under.
const StreamEventUpdate = "update"

// --- SSE framing --------------------------------------------------------

// SSEEvent is one decoded server-sent event.
type SSEEvent struct {
	Name string // "event:" field ("" if absent)
	Data []byte // "data:" lines joined with '\n'
}

// EncodeSSE writes one event in text/event-stream framing. Data containing
// newlines is split across multiple data: lines (the scanner rejoins them),
// so any payload round-trips.
func EncodeSSE(w io.Writer, name string, data []byte) error {
	var buf bytes.Buffer
	if name != "" {
		buf.WriteString("event: ")
		buf.WriteString(name)
		buf.WriteByte('\n')
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		buf.WriteString("data: ")
		buf.Write(line)
		buf.WriteByte('\n')
	}
	buf.WriteByte('\n')
	_, err := w.Write(buf.Bytes())
	return err
}

// EncodeSSEComment writes a comment frame (": text") — the heartbeat form:
// scanners count and skip it without dispatching an event.
func EncodeSSEComment(w io.Writer, text string) error {
	_, err := fmt.Fprintf(w, ": %s\n\n", text)
	return err
}

// ErrSSELineTooLong reports an SSE line beyond MaxSSELineBytes.
var ErrSSELineTooLong = errors.New("api: sse line exceeds limit")

// SSEScanner decodes a text/event-stream byte stream into events. It
// implements the subset of the SSE grammar this protocol uses: event:,
// data: (multi-line), comments, and unknown fields ignored. Lines are
// bounded by MaxSSELineBytes so a hostile peer cannot grow one line
// without limit; an event cut off mid-frame is discarded (the transport
// reported the error first).
type SSEScanner struct {
	br       *bufio.Reader
	comments int
}

// NewSSEScanner wraps r for event scanning.
func NewSSEScanner(r io.Reader) *SSEScanner {
	return &SSEScanner{br: bufio.NewReaderSize(r, 4096)}
}

// Comments returns how many comment frames (heartbeats) were skipped.
func (s *SSEScanner) Comments() int { return s.comments }

// Next returns the next complete event, or io.EOF at clean end of stream.
func (s *SSEScanner) Next() (SSEEvent, error) {
	var (
		ev      SSEEvent
		data    []byte
		gotData bool
	)
	for {
		line, err := s.readLine()
		if err != nil {
			return SSEEvent{}, err
		}
		if len(line) == 0 { // blank line: dispatch
			if !gotData {
				// Comment-only or empty frame: nothing to dispatch.
				ev = SSEEvent{}
				continue
			}
			ev.Data = data
			return ev, nil
		}
		if line[0] == ':' {
			s.comments++
			continue
		}
		field, value := splitSSEField(line)
		switch field {
		case "event":
			ev.Name = string(value)
		case "data":
			if gotData {
				data = append(data, '\n')
			}
			data = append(data, value...)
			gotData = true
		}
	}
}

// readLine reads one \n-terminated line (trailing \r stripped), enforcing
// the line-length bound.
func (s *SSEScanner) readLine() ([]byte, error) {
	var line []byte
	for {
		part, err := s.br.ReadSlice('\n')
		line = append(line, part...)
		if len(line) > MaxSSELineBytes {
			return nil, ErrSSELineTooLong
		}
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err == io.EOF && len(line) > 0 {
			// Stream cut mid-line: the frame is incomplete, discard it.
			return nil, io.EOF
		}
		return nil, err
	}
	line = line[:len(line)-1] // strip '\n'
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// splitSSEField splits "field: value", stripping one leading space from the
// value per the SSE grammar. A line with no colon is a field with empty
// value.
func splitSSEField(line []byte) (field string, value []byte) {
	i := bytes.IndexByte(line, ':')
	if i < 0 {
		return string(line), nil
	}
	field, value = string(line[:i]), line[i+1:]
	if len(value) > 0 && value[0] == ' ' {
		value = value[1:]
	}
	return field, value
}

// The shared latency histogram: lock-free fixed-bucket counts snapshotted
// into a cumulative wire document. internal/serve exports it under
// /metrics; internal/client keeps one per backend so client-side latency
// reads in exactly the same shape as server-side latency — correlating the
// two during a chaos soak is a field-by-field comparison, not a format
// translation.
package api

import (
	"sync/atomic"
	"time"
)

// LatencyBuckets are the histogram's upper bounds in seconds. The spread
// covers a cache hit (~100 µs) through a cold ground-truth simulation
// (seconds); the terminal +Inf bucket is implicit.
var LatencyBuckets = [NumLatencyBuckets]float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3,
	50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
}

// NumLatencyBuckets is the finite bucket count (the +Inf overflow bucket
// is stored separately).
const NumLatencyBuckets = 16

// Histogram is a fixed-bound latency histogram safe for concurrent Observe.
// The zero value is ready to use.
type Histogram struct {
	counts  [NumLatencyBuckets + 1]atomic.Uint64 // last = overflow (+Inf)
	count   atomic.Uint64
	sumNano atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < NumLatencyBuckets && s > LatencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(d))
}

// HistogramBucket is one cumulative bucket of the latency histogram: Count
// observations took LE seconds or less (LE 0 marks the +Inf bucket).
type HistogramBucket struct {
	LE    float64 `json:"le_seconds"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is the wire form of the latency histogram.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets"`
	Count   uint64            `json:"count"`
	MeanMs  float64           `json:"mean_ms"`
}

// Snapshot renders the histogram as its cumulative wire form.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	cum := uint64(0)
	for i, le := range LatencyBuckets {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, HistogramBucket{LE: le, Count: cum})
	}
	cum += h.counts[NumLatencyBuckets].Load()
	s.Buckets = append(s.Buckets, HistogramBucket{LE: 0, Count: cum})
	s.Count = h.count.Load()
	if s.Count > 0 {
		s.MeanMs = float64(h.sumNano.Load()) / float64(s.Count) / 1e6
	}
	return s
}

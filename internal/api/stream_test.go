package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestValidStreamDevice(t *testing.T) {
	for _, ok := range []string{"dev-000001", "a", "A.b:c_d-9", strings.Repeat("x", MaxStreamDevice)} {
		if !ValidStreamDevice(ok) {
			t.Errorf("%q rejected", ok)
		}
	}
	for _, bad := range []string{"", " ", "dev 1", "dev/1", "dév", strings.Repeat("x", MaxStreamDevice+1)} {
		if ValidStreamDevice(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestSSERoundTrip: encoded events (updates and heartbeats interleaved)
// decode back identically, floats bit-exact through the JSON frame.
func TestSSERoundTrip(t *testing.T) {
	var buf bytes.Buffer
	updates := []StreamUpdate{
		{Seq: 1, ObsSeq: 0, Window: 0, Margin: 20e-3},
		{Seq: 2, ObsSeq: 7, Window: 3, VSafe: 2.470000000000001, VDelta: math.Nextafter(0.1, 1), VE: 0.25, Margin: 0.04, Launch: 2.5100000000000011},
		{Seq: 3, ObsSeq: 9, Window: 5, VSafe: 2.1, Final: true, Reason: "close"},
	}
	for i, u := range updates {
		data, err := json.Marshal(u)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := EncodeSSE(&buf, StreamEventUpdate, data); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if i == 1 {
			if err := EncodeSSEComment(&buf, "hb"); err != nil {
				t.Fatalf("comment: %v", err)
			}
		}
	}
	sc := NewSSEScanner(&buf)
	for i, want := range updates {
		ev, err := sc.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Name != StreamEventUpdate {
			t.Fatalf("event %d: name %q", i, ev.Name)
		}
		var got StreamUpdate
		if err := json.Unmarshal(ev.Data, &got); err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		if math.Float64bits(got.VSafe) != math.Float64bits(want.VSafe) ||
			math.Float64bits(got.Launch) != math.Float64bits(want.Launch) ||
			got != want {
			t.Fatalf("event %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if sc.Comments() != 1 {
		t.Fatalf("comments: %d", sc.Comments())
	}
}

// TestSSEMultilineData: payloads containing newlines split across data:
// lines and rejoin.
func TestSSEMultilineData(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("line1\nline2\n\nline4")
	if err := EncodeSSE(&buf, "update", payload); err != nil {
		t.Fatalf("encode: %v", err)
	}
	sc := NewSSEScanner(&buf)
	ev, err := sc.Next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if !bytes.Equal(ev.Data, payload) {
		t.Fatalf("data %q != %q", ev.Data, payload)
	}
}

// TestSSEScannerEdges: CRLF lines, unknown fields, value-less fields,
// comment-only frames, and a frame cut off mid-line.
func TestSSEScannerEdges(t *testing.T) {
	in := ": warmup\r\n\r\n" + // comment-only frame: skipped entirely
		"event: update\r\nretry: 1000\r\ndata: {\"a\":1}\r\n\r\n" + // CRLF + unknown field
		"data\n\n" + // field with no colon: empty data line still dispatches
		"data: tail-cut" // no terminator: discarded
	sc := NewSSEScanner(strings.NewReader(in))
	ev, err := sc.Next()
	if err != nil || ev.Name != "update" || string(ev.Data) != `{"a":1}` {
		t.Fatalf("event 1: %+v err=%v", ev, err)
	}
	ev, err = sc.Next()
	if err != nil || ev.Name != "" || len(ev.Data) != 0 {
		t.Fatalf("event 2: %+v err=%v", ev, err)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("cut frame: want EOF, got %v", err)
	}
	if sc.Comments() != 1 {
		t.Fatalf("comments: %d", sc.Comments())
	}
}

// TestSSELineBound: a hostile unterminated line stops at MaxSSELineBytes
// instead of growing memory.
func TestSSELineBound(t *testing.T) {
	huge := io.MultiReader(
		strings.NewReader("data: "),
		&repeatReader{b: 'x', n: MaxSSELineBytes + 4096},
	)
	sc := NewSSEScanner(huge)
	if _, err := sc.Next(); !errors.Is(err, ErrSSELineTooLong) {
		t.Fatalf("want ErrSSELineTooLong, got %v", err)
	}
}

type repeatReader struct {
	b byte
	n int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if n > r.n {
		n = r.n
	}
	for i := 0; i < n; i++ {
		p[i] = r.b
	}
	r.n -= n
	return n, nil
}

// Package api is the wire contract of the culpeod service: the JSON
// request and response shapes POSTed to /v1/* and returned by every
// endpoint. It is a leaf package — no simulation imports — so both sides
// of the wire can share one set of types: internal/serve resolves these
// specs into library calls, and internal/client marshals them from
// consumer code. Keeping the contract in one place is what makes the
// client/server parity gates ("bit-identical to the library path")
// checkable: there is exactly one definition of every field.
package api

// PowerSpec describes the power system a request targets. Either name a
// catalogue part (resolved through internal/partsdb into an assembled bank)
// or give C/ESR explicitly; both default to the Capybara buffer.
type PowerSpec struct {
	// Part is a partsdb catalogue number (e.g. "supercapacitor-0000"). When
	// set, C and ESR come from a bank of these parts and must not also be
	// given explicitly.
	Part string `json:"part,omitempty"`
	// BankC is the target bank capacitance used with Part (F); 0 selects
	// the figures' 45 mF.
	BankC float64 `json:"bank_c,omitempty"`
	// C is the explicit buffer capacitance (F); 0 selects Capybara's 45 mF.
	C float64 `json:"c,omitempty"`
	// ESR is the explicit buffer ESR (Ω); 0 selects Capybara's 5 Ω net.
	ESR float64 `json:"esr,omitempty"`
	// VOff and VHigh set the monitor window (V); 0 selects 1.6 / 2.56.
	VOff  float64 `json:"v_off,omitempty"`
	VHigh float64 `json:"v_high,omitempty"`
	// Age is the capacitor life fraction consumed, in [0, 1]: capacitance
	// fades and ESR doubles toward end of life.
	Age float64 `json:"age,omitempty"`
}

// LoadSpec describes the task whose V_safe is wanted: a synthetic Table III
// shape, a named real-peripheral profile, or a raw uploaded current trace.
// Exactly one of Shape, Peripheral or Samples must be present.
type LoadSpec struct {
	// Shape is "uniform" or "pulse" (pulse adds the paper's 1.5 mA / 100 ms
	// compute tail), parameterized by I and T.
	Shape string  `json:"shape,omitempty"`
	I     float64 `json:"i,omitempty"` // load current (A)
	T     float64 `json:"t,omitempty"` // pulse duration (s)
	// Peripheral selects a measured profile: gesture | ble | mnist | lora.
	Peripheral string `json:"peripheral,omitempty"`
	// Samples is a raw captured current trace (A), analyzed at Rate.
	Samples []float64 `json:"samples,omitempty"`
	// Rate is the sample rate of Samples in Hz; 0 selects 125 kHz.
	Rate float64 `json:"rate,omitempty"`
}

// VSafeRequest is the body of POST /v1/vsafe and each element of a batch.
type VSafeRequest struct {
	Power PowerSpec `json:"power"`
	Load  LoadSpec  `json:"load"`
}

// ObservationSpec carries the three voltages Culpeo-R computes from.
type ObservationSpec struct {
	VStart float64 `json:"v_start"`
	VMin   float64 `json:"v_min"`
	VFinal float64 `json:"v_final"`
}

// VSafeRRequest is the body of POST /v1/vsafe-r: a runtime estimate from
// one observed execution (Equations 1a–1c and 3).
type VSafeRRequest struct {
	Power       PowerSpec       `json:"power"`
	Observation ObservationSpec `json:"observation"`
}

// SimulateRequest is the body of POST /v1/simulate: launch the task at
// VStart on a fresh system and report the verdict.
type SimulateRequest struct {
	Power PowerSpec `json:"power"`
	Load  LoadSpec  `json:"load"`
	// VStart is the starting terminal voltage; 0 launches from V_high.
	VStart float64 `json:"v_start,omitempty"`
	// Harvest is constant harvested power during the run (W).
	Harvest float64 `json:"harvest,omitempty"`
	// Fast opts into the analytic segment-advance stepper.
	Fast bool `json:"fast,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. Estimate elements and
// simulation elements may be mixed in one request; each list is answered
// by its own order-preserved result list. Simulations that share a power-
// model shape run on the server's SoA lockstep batch stepper.
type BatchRequest struct {
	Requests    []VSafeRequest    `json:"requests,omitempty"`
	Simulations []SimulateRequest `json:"simulations,omitempty"`
}

// EstimateResponse mirrors core.Estimate on the wire. encoding/json emits
// float64 at full round-trip precision, so a served estimate is
// bit-identical to the library's (the parity suite asserts this).
type EstimateResponse struct {
	VSafe  float64 `json:"v_safe"`
	VDelta float64 `json:"v_delta"`
	VE     float64 `json:"v_e"`
}

// SimulateResponse reports one launch verdict.
type SimulateResponse struct {
	Completed   bool    `json:"completed"`
	PowerFailed bool    `json:"power_failed"`
	VStart      float64 `json:"v_start"`
	VMin        float64 `json:"v_min"`
	VFinal      float64 `json:"v_final"`
	Duration    float64 `json:"duration"`
	EnergyUsed  float64 `json:"energy_used"`
	Error       string  `json:"error,omitempty"`
}

// BatchResult is one element of a batch response: an estimate or a
// per-element error (one bad element never fails its siblings).
type BatchResult struct {
	Estimate *EstimateResponse `json:"estimate,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// BatchSimResult is one element of a batch simulation response: a verdict
// or a per-element specification error. Simulation outcomes (brown-out,
// divergence) are carried inside the result, not here — only a malformed
// element reports Error.
type BatchSimResult struct {
	Result *SimulateResponse `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// BatchResponse is the body returned by POST /v1/batch. Results answers
// Requests and Simulations answers Simulations, each index-aligned with
// its request list.
type BatchResponse struct {
	Results     []BatchResult    `json:"results,omitempty"`
	Simulations []BatchSimResult `json:"simulations,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz body. Draining means the daemon received
// SIGTERM and load balancers (and client pools) should stop routing to it.
// The shard fields are additive (omitempty) so pre-sharding clients keep
// decoding the document unchanged: ShardID names this node's slot in a
// sharded deployment, TopologyEpoch is the fleet topology version the node
// last heard (0: standalone, never told), and Version identifies the
// serving build.
type HealthResponse struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
	// Phase is the server's lifecycle phase: "starting" (journal configured
	// but replay not begun), "recovering" (boot-time journal replay in
	// progress — route nothing here, the session table is half-rebuilt),
	// "ready", or "draining". Pre-phase servers omit it; clients treat an
	// empty phase as ready.
	Phase         string `json:"phase,omitempty"`
	ShardID       string `json:"shard_id,omitempty"`
	TopologyEpoch uint64 `json:"topology_epoch,omitempty"`
	Version       string `json:"version,omitempty"`
}

// RequestIDHeader carries the request-correlation ID. The client sends a
// fresh ID per attempt ("c<call>-a<attempt>"); the server echoes it (or
// mints "culpeod-<n>" for bare requests), so one failing request is
// traceable across the client log, a chaos proxy's event log and the
// server's metrics document.
const RequestIDHeader = "X-Request-Id"

package units

import (
	"math"
	"testing"
)

// FuzzParse checks Parse never panics and that accepted values round-trip
// through Format within formatting precision.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"45mF", "10ms", "-5mV", "2.4", "1e-3", "µ", "1µF", "0",
		"1e", "e1", "++", "3MΩ", "999999999999999999999", ".5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return
		}
		if math.IsNaN(v) {
			return // "nan" parses via ParseFloat; fine but not round-trippable
		}
		if math.IsInf(v, 0) || math.Abs(v) > 1e15 || (v != 0 && math.Abs(v) < 1e-14) {
			return // outside Format's engineering-prefix range
		}
		out := Format(v, "X")
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("Format(%g) = %q does not re-parse: %v", v, out, err)
		}
		if !RelEqual(back, v, 1e-2) {
			t.Fatalf("round trip %q → %g → %q → %g", s, v, out, back)
		}
	})
}

package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"45mF", 45e-3},
		{"10ms", 10e-3},
		{"50mA", 50e-3},
		{"2.4V", 2.4},
		{"10", 10},
		{"10Ω", 10},
		{"120u", 120e-6},
		{"20nA", 20e-9},
		{"1.5e-3", 1.5e-3},
		{"2kΩ", 2e3},
		{"3MΩ", 3e6},
		{"-5mV", -5e-3},
		{"7pF", 7e-12},
		{"100µF", 100e-6},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !RelEqual(got, c.want, 1e-12) {
			t.Errorf("Parse(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "V", "abc", "--3"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{0.045, "F", "45mF"},
		{2.4, "V", "2.4V"},
		{0, "A", "0A"},
		{1500, "Ω", "1.5kΩ"},
		{2.2e-6, "F", "2.2µF"},
		{20e-9, "A", "20nA"},
		{3.5e6, "Ω", "3.5MΩ"},
	}
	for _, c := range cases {
		if got := Format(c.v, c.unit); got != c.want {
			t.Errorf("Format(%g,%q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		v := math.Abs(math.Mod(raw, 1e6)) // keep in a printable range
		if math.IsNaN(v) || v == 0 {
			return true
		}
		s := Format(v, "V")
		got, err := Parse(s)
		if err != nil {
			return false
		}
		return RelEqual(got, v, 1e-2) // Format keeps 4 significant digits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestLerp(t *testing.T) {
	if Lerp(1, 3, 0.5) != 2 {
		t.Error("Lerp midpoint wrong")
	}
	if Lerp(1, 3, 0) != 1 || Lerp(1, 3, 1) != 3 {
		t.Error("Lerp endpoints wrong")
	}
}

func TestEnergyCapRoundTrip(t *testing.T) {
	f := func(cRaw, vRaw float64) bool {
		c := math.Abs(math.Mod(cRaw, 1.0)) + 1e-6
		v := math.Abs(math.Mod(vRaw, 10.0))
		e := EnergyCap(c, v)
		back := VoltageForEnergy(c, e)
		return RelEqual(back, v, 1e-9) || v == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVoltageForEnergyEdge(t *testing.T) {
	if VoltageForEnergy(0, 1) != 0 {
		t.Error("zero capacitance should give 0")
	}
	if VoltageForEnergy(1, -1) != 0 {
		t.Error("negative energy should give 0")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0005, 1e-3) {
		t.Error("within tolerance should be equal")
	}
	if ApproxEqual(1.0, 1.01, 1e-3) {
		t.Error("outside tolerance should differ")
	}
}

// Package units provides SI-unit helpers shared across the Culpeo
// simulator and charge model.
//
// All physical quantities in this module are plain float64 values in base SI
// units: volts, amperes, ohms, farads, seconds, watts, joules, cubic
// millimetres (the one non-SI exception, matching capacitor datasheets).
// This package holds the formatting, parsing, and tolerant-comparison
// helpers so the rest of the code can stay unit-disciplined without
// wrapper types on every arithmetic expression.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Common scale factors.
const (
	Milli = 1e-3
	Micro = 1e-6
	Nano  = 1e-9
	Kilo  = 1e3
	Mega  = 1e6
)

// ApproxEqual reports whether a and b are equal within tol (absolute).
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// RelEqual reports whether a and b are equal within rel (relative to the
// larger magnitude), falling back to an absolute tolerance near zero.
func RelEqual(a, b, rel float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-12 {
		return true
	}
	return math.Abs(a-b) <= rel*m
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// siPrefix returns the best engineering prefix and scale for v.
func siPrefix(v float64) (string, float64) {
	a := math.Abs(v)
	switch {
	case a == 0:
		return "", 1
	case a >= 1e6:
		return "M", 1e-6
	case a >= 1e3:
		return "k", 1e-3
	case a >= 1:
		return "", 1
	case a >= 1e-3:
		return "m", 1e3
	case a >= 1e-6:
		return "µ", 1e6
	case a >= 1e-9:
		return "n", 1e9
	default:
		return "p", 1e12
	}
}

// Format renders v with an engineering SI prefix and the given unit symbol,
// e.g. Format(0.045, "F") == "45mF".
func Format(v float64, unit string) string {
	p, s := siPrefix(v)
	x := v * s
	// Trim trailing zeros for clean tables.
	str := strconv.FormatFloat(x, 'g', 4, 64)
	return str + p + unit
}

// FormatV, FormatA, FormatOhm, FormatF, FormatS, FormatW are convenience
// wrappers for the most common quantities.
func FormatV(v float64) string   { return Format(v, "V") }
func FormatA(v float64) string   { return Format(v, "A") }
func FormatOhm(v float64) string { return Format(v, "Ω") }
func FormatF(v float64) string   { return Format(v, "F") }
func FormatS(v float64) string   { return Format(v, "s") }
func FormatW(v float64) string   { return Format(v, "W") }

// Parse parses a value with an optional SI prefix and unit suffix, e.g.
// "45mF", "10ms", "50mA", "2.4V", "10Ω", "120u". The unit letters themselves
// are ignored; only the prefix scales the value.
func Parse(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty value")
	}
	// Split the leading numeric portion from the suffix.
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			// Guard: 'e'/'E' only counts as part of the number when followed
			// by a digit or sign (exponent); otherwise it starts the suffix.
			if c == 'e' || c == 'E' {
				if i+1 >= len(s) {
					break
				}
				n := s[i+1]
				if !(n >= '0' && n <= '9') && n != '-' && n != '+' {
					break
				}
			}
			i++
			continue
		}
		break
	}
	num, suffix := s[:i], s[i:]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number %q: %v", s, err)
	}
	suffix = strings.TrimSpace(suffix)
	if suffix == "" {
		return v, nil
	}
	switch suffix[0] {
	case 'p':
		v *= 1e-12
	case 'n':
		v *= Nano
	case 'u':
		v *= Micro
	case 'm':
		// Ambiguity: "m" could be milli or the unit metre; for our domain it
		// is always milli (mV, mA, mF, ms, mΩ).
		v *= Milli
	case 'k':
		v *= Kilo
	case 'M':
		v *= Mega
	}
	if strings.HasPrefix(suffix, "µ") {
		v *= Micro
	}
	return v, nil
}

// EnergyCap returns the energy stored in capacitance c at voltage v:
// E = ½CV².
func EnergyCap(c, v float64) float64 { return 0.5 * c * v * v }

// VoltageForEnergy returns the voltage a capacitance c must hold to store
// energy e: V = sqrt(2E/C). It returns 0 for non-positive inputs.
func VoltageForEnergy(c, e float64) float64 {
	if c <= 0 || e <= 0 {
		return 0
	}
	return math.Sqrt(2 * e / c)
}

package expt

import (
	"context"

	"culpeo/internal/capacitor"
	"culpeo/internal/intermittent"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/sweep"
)

// IntermittentRow is one gate's outcome on the intermittent pipeline.
type IntermittentRow struct {
	Gate           string
	Iterations     int
	Reexecutions   int
	PowerFailures  int
	WastedEnergy   float64
	UsefulEnergy   float64
	WastedPct      float64
	LiveLocked     bool
	LiveLockedTask string
}

// intermittentConfig builds the marginal device used by the intermittent
// experiments: a 15 mF, 15 Ω buffer.
func intermittentConfig() (powersys.Config, error) {
	part := capacitor.Part{
		PartNumber: "CPX3225A752D", Tech: capacitor.Supercap,
		C: 7.5e-3, ESR: 30, Volume: 7.04, DCL: 3.3e-9,
	}
	bank, err := capacitor.AssembleBank(part, 15e-3)
	if err != nil {
		return powersys.Config{}, err
	}
	cfg := powersys.Capybara()
	net, err := capacitor.NewNetwork(bank.Branch("main", cfg.VHigh))
	if err != nil {
		return powersys.Config{}, err
	}
	cfg.Storage = net
	cfg.DT = 40e-6
	return cfg, nil
}

// intermittentProgram builds the sense→process→report pipeline.
func intermittentProgram() intermittent.Program {
	return intermittent.Program{
		Name: "sense-pipeline",
		Tasks: []intermittent.AtomicTask{
			{ID: "sample", Profile: load.IMURead(16)},
			{ID: "process", Profile: load.FFT(128)},
			{ID: "report", Profile: load.NewUniform(20e-3, 20e-3)},
		},
	}
}

// Intermittent runs the sense→process→report pipeline under the three
// dispatch gates on the marginal buffer (the Section I motivation:
// opportunistic execution wastes energy on doomed attempts; energy gating
// still misses the ESR drop; Culpeo gating avoids both). The three gates
// are independent long simulations, so each is one sweep cell with its own
// gate, runtime and cloned storage network.
func Intermittent(ctx context.Context, horizon float64) ([]IntermittentRow, error) {
	if horizon <= 0 {
		horizon = 60
	}
	cfg, err := intermittentConfig()
	if err != nil {
		return nil, err
	}
	model := capybaraModel(cfg)
	prog := intermittentProgram()

	mkGates := []func() (intermittent.Gate, error){
		func() (intermittent.Gate, error) { return intermittent.Opportunistic{}, nil },
		func() (intermittent.Gate, error) { return intermittent.NewEnergyGate(cfg, prog) },
		func() (intermittent.Gate, error) { return intermittent.NewCulpeoGate(model, prog) },
	}

	return sweep.Map(ctx, mkGates, func(_ context.Context, _ int, mk func() (intermittent.Gate, error)) (IntermittentRow, error) {
		g, err := mk()
		if err != nil {
			return IntermittentRow{}, err
		}
		c := cfg
		c.Storage = cfg.Storage.Clone()
		sys, err := powersys.New(c)
		if err != nil {
			return IntermittentRow{}, err
		}
		if err := sys.ChargeTo(c.VHigh); err != nil {
			return IntermittentRow{}, err
		}
		rt := &intermittent.Runtime{Sys: sys, Harvest: 1.5e-3, Gate: g, MaxAttempts: 1000}
		res, err := rt.Run(prog, horizon)
		if err != nil {
			return IntermittentRow{}, err
		}
		row := IntermittentRow{
			Gate:           g.Name(),
			Iterations:     res.Iterations,
			Reexecutions:   res.Reexecutions,
			PowerFailures:  res.PowerFailures,
			WastedEnergy:   res.WastedEnergy,
			UsefulEnergy:   res.UsefulEnergy,
			LiveLocked:     res.LiveLocked,
			LiveLockedTask: res.LiveLockedTask,
		}
		if total := res.WastedEnergy + res.UsefulEnergy; total > 0 {
			row.WastedPct = res.WastedEnergy / total * 100
		}
		return row, nil
	})
}

// IntermittentTable renders the rows.
func IntermittentTable(rows []IntermittentRow) *Table {
	t := &Table{
		Title:  "Intermittent execution: dispatch gates on a marginal 15 mF / 15 Ω buffer (60 s)",
		Header: []string{"gate", "iterations", "re-executions", "power failures", "wasted energy %"},
		Caption: "Opportunistic and energy-only dispatch burn energy and " +
			"recharge time on attempts the ESR drop dooms; the Culpeo gate " +
			"waits instead — zero failures and zero waste at comparable " +
			"throughput. (Under deadlines the failures translate into missed " +
			"events — Figure 12.)",
	}
	for _, r := range rows {
		t.Add(r.Gate,
			f0(float64(r.Iterations)),
			f0(float64(r.Reexecutions)),
			f0(float64(r.PowerFailures)),
			f1(r.WastedPct),
		)
	}
	return t
}

// DecomposeRow is the task-division demo: an energy-infeasible task is
// flagged at compile time and split until each chunk fits.
type DecomposeRow struct {
	Chunks       int
	ChunkVSafe   float64 // the first chunk's requirement
	Feasible     bool
	IterationsIn int // pipeline iterations completed in the demo window
}

// Decompose demonstrates Culpeo-guided task division on a task whose
// energy exceeds the buffer (10 mA for 3 s on 15 mF). Each split factor is
// one sweep cell running an independent gated pipeline.
func Decompose(ctx context.Context, horizon float64) ([]DecomposeRow, error) {
	if horizon <= 0 {
		horizon = 120
	}
	cfg, err := intermittentConfig()
	if err != nil {
		return nil, err
	}
	model := capybaraModel(cfg)

	return sweep.Map(ctx, []int{1, 2, 4, 8}, func(_ context.Context, _ int, n int) (DecomposeRow, error) {
		big := intermittent.AtomicTask{ID: "bigjob", Profile: load.NewUniform(10e-3, 3.0)}
		chunks := load.SplitEven(big.Profile, n)
		tasks := make([]intermittent.AtomicTask, n)
		for i, c := range chunks {
			tasks[i] = intermittent.AtomicTask{ID: c.Name(), Profile: c}
		}
		prog := intermittent.Program{Name: "split", Tasks: tasks}
		ests, err := intermittent.Estimates(model, prog)
		if err != nil {
			return DecomposeRow{}, err
		}
		feasible := true
		for _, e := range ests {
			if e.VSafe > model.VHigh {
				feasible = false
				break
			}
		}
		row := DecomposeRow{Chunks: n, ChunkVSafe: ests[0].VSafe, Feasible: feasible}
		if feasible {
			gate, err := intermittent.NewCulpeoGate(model, prog)
			if err != nil {
				return DecomposeRow{}, err
			}
			c := cfg
			c.Storage = cfg.Storage.Clone()
			sys, err := powersys.New(c)
			if err != nil {
				return DecomposeRow{}, err
			}
			rt := &intermittent.Runtime{Sys: sys, Harvest: 2.5e-3, Gate: gate}
			res, err := rt.Run(prog, horizon)
			if err != nil {
				return DecomposeRow{}, err
			}
			row.IterationsIn = res.Iterations
		}
		return row, nil
	})
}

// DecomposeTable renders the rows.
func DecomposeTable(rows []DecomposeRow) *Table {
	t := &Table{
		Title:  "Task division guided by V_safe: 10 mA × 3 s job on a 15 mF buffer",
		Header: []string{"chunks", "chunk V_safe", "feasible", "iterations (120 s)"},
		Caption: "Whole, the job's V_safe exceeds V_high — Culpeo-PG flags it " +
			"at compile time instead of letting the device livelock. Split " +
			"finely enough, every chunk fits and the job makes progress.",
	}
	for _, r := range rows {
		feas := "no (V_safe > V_high)"
		if r.Feasible {
			feas = "yes"
		}
		t.Add(f0(float64(r.Chunks)), f3(r.ChunkVSafe), feas, f0(float64(r.IterationsIn)))
	}
	return t
}

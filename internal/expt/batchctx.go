package expt

import "context"

// batchKey is the context key carrying the batch-lane request through the
// experiment entry points (the CLIs set it from their -batch flags).
type batchKey struct{}

// WithBatch marks the context so experiments route their ground-truth
// searches through the SoA lockstep batch stepper
// (harness.GroundTruthBatch): every profile's tick schedule is compiled
// once and the bisection probes of all loads advance together. The exact
// batch lane is byte-identical to the scalar path, so golden outputs do
// not change; combined with WithFast the probes run on the fast batch
// lane inside the usual sub-millivolt envelope.
func WithBatch(ctx context.Context) context.Context {
	return context.WithValue(ctx, batchKey{}, true)
}

// BatchEnabled reports whether WithBatch was applied to the context.
func BatchEnabled(ctx context.Context) bool {
	on, _ := ctx.Value(batchKey{}).(bool)
	return on
}

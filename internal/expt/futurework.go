package expt

import (
	"culpeo/internal/chargetypes"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/prob"
	"culpeo/internal/profiler"
)

// ChargeTypesResult is the §IX "Language Constructs" demonstration: the
// level the energy discipline assigns to a high-drop element versus the
// voltage discipline's level, and what the hardware does at each.
type ChargeTypesResult struct {
	EnergyLevel     float64
	VoltageLevel    float64
	EnergyOutcome   bool // task completes when launched at the energy level
	VoltageOutcome  bool
	EnergyTypeFails int // violations the voltage checker finds in the energy typing
}

// ChargeTypes runs the compute→radio example of §IX under both typing
// disciplines and validates the levels on the simulator.
func ChargeTypes() (ChargeTypesResult, error) {
	cfg := powersys.Capybara()
	model := capybaraModel(cfg)
	pg := profiler.PG{Model: model}

	computeLoad := load.NewUniform(2e-3, 200e-3)
	radioLoad := load.NewUniform(50e-3, 5e-3)
	computeEst, err := pg.Estimate(computeLoad)
	if err != nil {
		return ChargeTypesResult{}, err
	}
	radioEst, err := pg.Estimate(radioLoad)
	if err != nil {
		return ChargeTypesResult{}, err
	}
	progTyped := chargetypes.Program{
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Ops: []chargetypes.Op{
			{ID: "compute", Est: computeEst,
				Calls: []chargetypes.Call{{Callee: "radio", AfterVE: computeEst.VE}}},
			{ID: "radio", Est: radioEst},
		},
	}
	eLevels, _, err := chargetypes.Infer(progTyped, chargetypes.EnergyDiscipline)
	if err != nil {
		return ChargeTypesResult{}, err
	}
	vLevels, _, err := chargetypes.Infer(progTyped, chargetypes.VoltageDiscipline)
	if err != nil {
		return ChargeTypesResult{}, err
	}
	violations, err := chargetypes.Check(progTyped, chargetypes.VoltageDiscipline, eLevels)
	if err != nil {
		return ChargeTypesResult{}, err
	}

	launch := func(v float64) (bool, error) {
		c := cfg
		c.Storage = cfg.Storage.Clone()
		sys, err := powersys.New(c)
		if err != nil {
			return false, err
		}
		if err := sys.ChargeTo(c.VHigh); err != nil {
			return false, err
		}
		if err := sys.DischargeTo(v); err != nil {
			return false, err
		}
		sys.Monitor().Force(true)
		res := sys.Run(radioLoad, powersys.RunOptions{SkipRebound: true})
		return res.Completed && res.VMin >= c.VOff, nil
	}
	eOut, err := launch(eLevels["radio"])
	if err != nil {
		return ChargeTypesResult{}, err
	}
	vOut, err := launch(vLevels["radio"])
	if err != nil {
		return ChargeTypesResult{}, err
	}
	return ChargeTypesResult{
		EnergyLevel:     eLevels["radio"],
		VoltageLevel:    vLevels["radio"],
		EnergyOutcome:   eOut,
		VoltageOutcome:  vOut,
		EnergyTypeFails: len(violations),
	}, nil
}

// Table renders the charge-types demonstration.
func (r ChargeTypesResult) Table() *Table {
	t := &Table{
		Title:  "§IX Language Constructs: charge-state typing of a high-drop radio element",
		Header: []string{"discipline", "radio level", "launch outcome"},
		Caption: "The Energy-Types invariant types the radio barely above " +
			"V_off (its energy is tiny) and the launch browns out; the " +
			"voltage-aware discipline demands the ESR headroom and succeeds.",
	}
	out := func(ok bool) string {
		if ok {
			return "completes"
		}
		return "POWER FAILURE"
	}
	t.Add("energy (Energy-Types)", f3(r.EnergyLevel), out(r.EnergyOutcome))
	t.Add("voltage (this work)", f3(r.VoltageLevel), out(r.VoltageOutcome))
	return t
}

// ProbRow is one target-probability row of the §IX probabilistic-reasoning
// demonstration.
type ProbRow struct {
	Target      float64
	EnergyBound float64
	EnergyProb  float64 // measured completion probability at the energy bound
	VoltBound   float64
	VoltProb    float64 // measured completion probability at the voltage bound
}

// Probabilistic compares the energy-quantile bound against the
// voltage-aware Monte-Carlo bound for a knob-varying radio task.
func Probabilistic() ([]ProbRow, error) {
	cfg := powersys.Capybara()
	d := prob.KnobPulse{
		ID: "knob-radio", ILoad: 25e-3, TMin: 2e-3, TMax: 20e-3,
		ICompute: 1.5e-3, TCompute: 100e-3,
	}
	const n, seed = 60, 11
	var rows []ProbRow
	for _, target := range []float64{0.5, 0.9, 0.99} {
		eBound, err := prob.EnergyQuantileVSafe(cfg, d, target, 400, seed)
		if err != nil {
			return nil, err
		}
		vBound, err := prob.VSafeQuantile(cfg, d, target, n, seed)
		if err != nil {
			return nil, err
		}
		eProb, err := prob.CompletionProb(cfg, d, eBound, n, seed+1)
		if err != nil {
			return nil, err
		}
		vProb, err := prob.CompletionProb(cfg, d, vBound, n, seed+2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ProbRow{
			Target: target, EnergyBound: eBound, EnergyProb: eProb,
			VoltBound: vBound, VoltProb: vProb,
		})
	}
	return rows, nil
}

// ProbTable renders the rows.
func ProbTable(rows []ProbRow) *Table {
	t := &Table{
		Title:  "§IX Probabilistic Resource Reasoning: knob-varying radio task (25 mA, 2–20 ms)",
		Header: []string{"target P", "energy bound V", "P @ energy bound", "voltage bound V", "P @ voltage bound"},
		Caption: "The energy-quantile bound says the task 'with all " +
			"likelihood has enough energy' — and it browns out almost every " +
			"time. Modelling voltage as the resource restores the guarantee.",
	}
	for _, r := range rows {
		t.Add(f3(r.Target), f3(r.EnergyBound), f3(r.EnergyProb), f3(r.VoltBound), f3(r.VoltProb))
	}
	return t
}

package expt

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestCrashSoak is the crash-recovery acceptance gate at test scale: a
// reduced soak (the `make crash` -race configuration) must pass every
// gate — zero lost acked observations, zero duplicated folds, bit-exact
// estimate/margin parity, zero client rebuilds, bit-identical terminal
// replays and idempotent close retries — and a second same-seed run must
// produce a byte-identical event log. The full 20-cycle soak (and its
// three-run log comparison) runs via `culpeo crashtest`.
func TestCrashSoak(t *testing.T) {
	ctx := context.Background()
	bin, err := buildCulpeod(ctx, t.TempDir())
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	opt := CrashOpts{Reduced: true, Binary: bin, Logf: t.Logf}
	if testing.Short() {
		opt.Cycles, opt.Devices = 3, 6
	}
	runOnce := func() *CrashReport {
		t.Helper()
		rep, err := CrashSoak(ctx, opt)
		if err != nil {
			t.Fatalf("soak: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatalf("render: %v", err)
		}
		if err := rep.Gate(); err != nil {
			t.Fatalf("gate: %v\nreport:\n%s", err, buf.Bytes())
		}
		return rep
	}

	first := runOnce()
	if first.Kills < 3 {
		t.Fatalf("only %d kill cycles — the soak never actually crashed the daemon", first.Kills)
	}
	t.Logf("crash soak: %d kills, %d acked obs, %d parity checks, %d close retries",
		first.Kills, first.AckedObs, first.ParityChecked, first.CloseRetryChecked)

	// Determinism: the event log is seeded plans plus invariant outcomes
	// only, so a second run from a fresh journal directory must reproduce
	// it byte for byte.
	second := runOnce()
	a, b := strings.Join(first.Log, "\n"), strings.Join(second.Log, "\n")
	if a != b {
		al, bl := first.Log, second.Log
		for i := 0; i < len(al) && i < len(bl); i++ {
			if al[i] != bl[i] {
				t.Fatalf("event log diverged at line %d:\n run1: %s\n run2: %s", i, al[i], bl[i])
			}
		}
		t.Fatalf("event logs differ in length: %d vs %d lines", len(al), len(bl))
	}
}

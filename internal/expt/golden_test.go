package expt

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"culpeo/internal/sweep"
)

// update rewrites the golden corpus:
//
//	go test ./internal/expt -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenEntry is one recorded experiment output. The generator must be
// fully deterministic: fixed seeds, fixed grids, no wall-clock input.
type goldenEntry struct {
	name string
	long bool // skipped under -short (seconds-long simulations)
	gen  func(ctx context.Context, w io.Writer) error
}

// goldenCorpus covers every sweep-refactored driver (the outputs that
// must stay byte-identical across worker counts) plus the fig3 point
// cloud, which exercises BankSweep's order preservation over ~2000 cells.
func goldenCorpus() []goldenEntry {
	return []goldenEntry{
		{name: "fig03", gen: func(ctx context.Context, w io.Writer) error {
			r, err := Fig3(ctx)
			if err != nil {
				return err
			}
			if err := r.Table().Render(w); err != nil {
				return err
			}
			return r.Points().CSV(w)
		}},
		{name: "fig05", gen: func(ctx context.Context, w io.Writer) error {
			r, err := Fig5(ctx)
			if err != nil {
				return err
			}
			return r.Table().Render(w)
		}},
		{name: "tbl03", gen: func(ctx context.Context, w io.Writer) error {
			rows, err := Tbl3(ctx)
			if err != nil {
				return err
			}
			return Tbl3Table(rows).Render(w)
		}},
		{name: "fig10", gen: func(ctx context.Context, w io.Writer) error {
			rows, err := Fig10(ctx)
			if err != nil {
				return err
			}
			return Fig10Table(rows).Render(w)
		}},
		{name: "fig11", gen: func(ctx context.Context, w io.Writer) error {
			rows, err := Fig11(ctx)
			if err != nil {
				return err
			}
			return Fig11Table(rows).Render(w)
		}},
		{name: "ablations", gen: func(ctx context.Context, w io.Writer) error {
			ts, err := TimestepSweep(ctx)
			if err != nil {
				return err
			}
			if err := TimestepTable(ts).Render(w); err != nil {
				return err
			}
			ab, err := ADCBitsSweep(ctx)
			if err != nil {
				return err
			}
			if err := ADCBitsTable(ab).Render(w); err != nil {
				return err
			}
			ip, err := ISRPeriodSweep(ctx)
			if err != nil {
				return err
			}
			if err := ISRPeriodTable(ip).Render(w); err != nil {
				return err
			}
			el, err := ESRLossSweep(ctx)
			if err != nil {
				return err
			}
			return ESRLossTable(el).Render(w)
		}},
		{name: "soak", gen: func(ctx context.Context, w io.Writer) error {
			rows, err := Soak(ctx, SoakOpts{Horizon: 20})
			if err != nil {
				return err
			}
			return SoakTable(rows).Render(w)
		}},
		{name: "fig12", long: true, gen: func(ctx context.Context, w io.Writer) error {
			rows, err := Fig12(ctx, Fig12Opts{Horizon: 20, Trials: 1})
			if err != nil {
				return err
			}
			return Fig12Table(rows).Render(w)
		}},
		{name: "fig13", long: true, gen: func(ctx context.Context, w io.Writer) error {
			rows, err := Fig13(ctx, Fig12Opts{Horizon: 20, Trials: 1})
			if err != nil {
				return err
			}
			return Fig13Table(rows).Render(w)
		}},
		{name: "intermittent", long: true, gen: func(ctx context.Context, w io.Writer) error {
			rows, err := Intermittent(ctx, 10)
			if err != nil {
				return err
			}
			if err := IntermittentTable(rows).Render(w); err != nil {
				return err
			}
			dec, err := Decompose(ctx, 30)
			if err != nil {
				return err
			}
			return DecomposeTable(dec).Render(w)
		}},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden")
}

func renderGolden(t *testing.T, e goldenEntry, ctx context.Context) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.gen(ctx, &buf); err != nil {
		t.Fatalf("%s: %v", e.name, err)
	}
	return buf.Bytes()
}

// TestGolden locks every recorded experiment output: a behaviour change
// anywhere in the simulation stack shows up as a golden diff, reviewed and
// re-recorded explicitly with -update.
func TestGolden(t *testing.T) {
	for _, e := range goldenCorpus() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			if e.long && testing.Short() {
				t.Skip("seconds-long simulation")
			}
			got := renderGolden(t, e, context.Background())
			path := goldenPath(e.name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file (run `go test ./internal/expt -run TestGolden -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output differs from %s (re-record with -update if intended)\n%s",
					path, diffHint(want, got))
			}
		})
	}
}

// TestGoldenWorkerInvariance is the determinism contract of the sweep
// engine: the same experiment must produce byte-identical output whether it
// runs on 1 worker, 4 workers, or every core — and, because the exact batch
// lane is bit-equal to the scalar stepper, whether the ground-truth
// searches route through the SoA lockstep batch or not.
func TestGoldenWorkerInvariance(t *testing.T) {
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, e := range goldenCorpus() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			if e.long && testing.Short() {
				t.Skip("seconds-long simulation")
			}
			ref := renderGolden(t, e, sweep.WithWorkers(context.Background(), workerCounts[0]))
			for _, n := range workerCounts[1:] {
				got := renderGolden(t, e, sweep.WithWorkers(context.Background(), n))
				if !bytes.Equal(ref, got) {
					t.Errorf("workers=%d output differs from workers=1\n%s", n, diffHint(ref, got))
				}
			}
			// Batch-lane variant of the matrix: serial and saturated, both
			// against the non-batch workers=1 reference.
			for _, n := range []int{1, runtime.NumCPU()} {
				got := renderGolden(t, e, WithBatch(sweep.WithWorkers(context.Background(), n)))
				if !bytes.Equal(ref, got) {
					t.Errorf("batch workers=%d output differs from scalar workers=1\n%s", n, diffHint(ref, got))
				}
			}
		})
	}
}

// diffHint points at the first differing line so golden failures are
// readable without an external diff tool.
func diffHint(want, got []byte) string {
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			return fmt.Sprintf("first difference at line %d:\n-%s\n+%s", i+1, wantLines[i], gotLines[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wantLines), len(gotLines))
}

package expt

import (
	"context"
	"strings"
	"testing"

	"culpeo/internal/apps"
	"culpeo/internal/harness"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Header:  []string{"a", "bbb"},
		Caption: "cap",
	}
	tbl.Add("1", "2")
	tbl.Add("333", "4")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T\n=", "a    bbb", "333  4", "cap"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,bbb\n1,2\n") {
		t.Errorf("csv wrong: %q", csv.String())
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := &Table{Header: []string{"x"}}
	tbl.Add(`va"l,ue`)
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"va""l,ue"`) {
		t.Errorf("escaping wrong: %q", sb.String())
	}
}

func TestFig1b(t *testing.T) {
	r, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	// The decomposition must be self-consistent and the ESR component must
	// dominate the energy component for a 100 ms pulse on the 45 mF bank —
	// the paper's 0.25 V energy vs 0.35 V ESR split.
	if r.TotalDrop <= 0 || r.ESRDrop <= 0 || r.EnergyDrop <= 0 {
		t.Fatalf("degenerate decomposition: %+v", r)
	}
	if diff := r.TotalDrop - (r.EnergyDrop + r.ESRDrop); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("decomposition doesn't add up: %+v", r)
	}
	if !(r.ESRDrop > r.EnergyDrop) {
		t.Errorf("ESR drop (%g) should exceed energy drop (%g) on this bank", r.ESRDrop, r.EnergyDrop)
	}
	if r.Trace.Len() == 0 {
		t.Error("no trace recorded")
	}
	if got := r.Table(); len(got.Rows) != 6 {
		t.Errorf("table rows = %d", len(got.Rows))
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if !r.PowerFailed {
		t.Fatal("the Figure 4 scenario must power off")
	}
	// "Plenty remains": most of the stored energy is stranded.
	if r.EnergyRemainPct < 75 {
		t.Errorf("remaining energy = %g%%, want most of it", r.EnergyRemainPct)
	}
	// The paper's threshold is ≈64.5% of the operating range for this load;
	// our booster model shifts it somewhat, but it must be well past half.
	if r.ThresholdPctOfOp < 50 || r.ThresholdPctOfOp > 95 {
		t.Errorf("safe threshold = %g%% of range", r.ThresholdPctOfOp)
	}
	if len(r.Table().Rows) == 0 {
		t.Error("empty table")
	}
}

func TestFig3(t *testing.T) {
	r, err := Fig3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Banks) == 0 || len(r.Summaries) != 4 {
		t.Fatalf("banks=%d summaries=%d", len(r.Banks), len(r.Summaries))
	}
	if len(r.Table().Rows) != 4 {
		t.Error("summary table should have one row per technology")
	}
	if len(r.Points().Rows) != len(r.Banks) {
		t.Error("point cloud incomplete")
	}
}

func TestFig5(t *testing.T) {
	r, err := Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !(r.CulpeoNeedRadio > r.CatNapNeedRadio) {
		t.Errorf("Culpeo need (%g) should exceed CatNap need (%g)", r.CulpeoNeedRadio, r.CatNapNeedRadio)
	}
	if !r.RadioFailed {
		t.Error("the CatNap-approved dispatch must fail")
	}
	if r.CulpeoWouldDispatch {
		t.Error("Culpeo must refuse the failing dispatch")
	}
	if len(r.Table().Rows) == 0 {
		t.Error("empty table")
	}
}

func TestFig6(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 loads × 3 estimators
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	// The headline: the majority of energy-only estimates are unsafe.
	unsafe := 0
	for _, r := range rows {
		if r.Verdict == harness.Unsafe {
			unsafe++
		}
	}
	if unsafe < len(rows)/2 {
		t.Errorf("only %d/%d energy-only estimates unsafe — the figure's point is lost", unsafe, len(rows))
	}
	if len(Fig6Table(rows).Rows) != 18 {
		t.Error("table incomplete")
	}
}

func TestFig10(t *testing.T) {
	rows, err := Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18*4 {
		t.Fatalf("rows = %d, want 72", len(rows))
	}
	perEst := map[string][]Fig10Row{}
	for _, r := range rows {
		perEst[r.Estimator] = append(perEst[r.Estimator], r)
	}
	// CatNap must be unsafe on most pulse loads.
	catUnsafePulse := 0
	for _, r := range perEst["Catnap"] {
		if r.Shape == "pulse" && r.Verdict == harness.Unsafe {
			catUnsafePulse++
		}
	}
	if catUnsafePulse < 5 {
		t.Errorf("CatNap unsafe on only %d/9 pulse loads", catUnsafePulse)
	}
	// Culpeo variants must be safe (allowing the paper's own documented
	// exception: ISR's missed minimum on 1 ms pulses, and marginal rounding).
	for _, est := range []string{"Culpeo-PG", "Culpeo-ISR", "Culpeo-uArch"} {
		bad := 0
		for _, r := range perEst[est] {
			if r.Verdict == harness.Unsafe && !(est == "Culpeo-ISR" && strings.Contains(r.Load, "1ms")) {
				bad++
				t.Logf("%s unsafe on %s: est %g vs truth %g", est, r.Load, r.Estimate, r.GroundTruth)
			}
		}
		if bad > 0 {
			t.Errorf("%s unsafe on %d loads", est, bad)
		}
	}
	// Culpeo errors stay performant: within ~15%% of the range.
	for _, est := range []string{"Culpeo-PG", "Culpeo-ISR", "Culpeo-uArch"} {
		for _, r := range perEst[est] {
			if r.ErrorPct > 20 {
				t.Errorf("%s on %s overshoots: %+.1f%%", est, r.Load, r.ErrorPct)
			}
		}
	}
	if len(Fig10Table(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestFig11(t *testing.T) {
	rows, err := Fig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 peripherals × 4 estimators
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		switch r.Estimator {
		case "Culpeo-PG", "Culpeo-R":
			if !r.Completed {
				t.Errorf("%s/%s: Culpeo estimate failed (VSafe %g, VMin %g)",
					r.Peripheral, r.Estimator, r.VSafe, r.VMin)
			}
		case "Energy-V":
			if r.Completed {
				t.Errorf("%s/Energy-V unexpectedly survived", r.Peripheral)
			}
		}
	}
	// CatNap must fail on at least the high-current peripherals.
	catFails := 0
	for _, r := range rows {
		if r.Estimator == "Catnap" && !r.Completed {
			catFails++
		}
	}
	if catFails == 0 {
		t.Error("CatNap never failed on real peripherals")
	}
	if len(Fig11Table(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestTbl3(t *testing.T) {
	rows, err := Tbl3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 { // 12 uniform + 12 pulse + 3 peripherals
		t.Fatalf("rows = %d, want 27", len(rows))
	}
	for _, r := range rows {
		if r.Energy <= 0 || r.Peak <= 0 || r.Duration <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	if len(Tbl3Table(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestDecoupling(t *testing.T) {
	rows, err := Decoupling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone non-increasing drop with more decoupling, but even the
	// largest decoupling leaves a sizeable drop (the paper's ~20% point).
	for i := 1; i < len(rows); i++ {
		if rows[i].ESRDrop > rows[i-1].ESRDrop+1e-6 {
			t.Errorf("drop increased with decoupling: %+v", rows)
		}
	}
	last := rows[len(rows)-1]
	if last.DropPctOp < 10 {
		t.Errorf("6.4 mF decoupling still should leave ≥10%% drop, got %g%%", last.DropPctOp)
	}
	if len(DecouplingTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestFig12Short(t *testing.T) {
	if testing.Short() {
		t.Skip("application sims are seconds-long")
	}
	rows, err := Fig12(context.Background(), Fig12Opts{Horizon: 60, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig12Row{}
	for _, r := range rows {
		byKey[r.Stream+"/"+r.Scheduler] = r
	}
	// Culpeo beats CatNap on every stream; decisively on PS.
	for _, stream := range []string{"PS", "NMR-mic"} {
		cat, cul := byKey[stream+"/CatNap"], byKey[stream+"/Culpeo"]
		if !(cul.CapturePct > cat.CapturePct) {
			t.Errorf("%s: Culpeo %.0f%% should beat CatNap %.0f%%", stream, cul.CapturePct, cat.CapturePct)
		}
	}
	if len(Fig12Table(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestFig13Short(t *testing.T) {
	if testing.Short() {
		t.Skip("application sims are seconds-long")
	}
	rows, err := Fig13(context.Background(), Fig12Opts{Horizon: 60, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 rates × 2 apps × 2 policies
		t.Fatalf("rows = %d", len(rows))
	}
	// Culpeo at the slow rate captures everything.
	for _, r := range rows {
		if r.Scheduler == "Culpeo" && r.Rate == apps.Slow && r.CapturePct < 99 {
			t.Errorf("Culpeo %s slow capture = %.0f%%", r.App, r.CapturePct)
		}
	}
	if len(Fig13Table(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestTimestepSweep(t *testing.T) {
	rows, err := TimestepSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The default step's V_min error versus the 1 µs reference is small.
	for _, r := range rows {
		if r.DT == 8e-6 && (r.ErrVsFinest > 5e-3 || r.ErrVsFinest < -5e-3) {
			t.Errorf("default dt error = %g V", r.ErrVsFinest)
		}
	}
	if len(TimestepTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestADCBitsSweep(t *testing.T) {
	rows, err := ADCBitsSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All resolutions stay safe; fewer bits trend more conservative.
	for _, r := range rows {
		if r.Verdict == harness.Unsafe {
			t.Errorf("%d-bit estimate unsafe", r.Bits)
		}
	}
	if !(rows[0].Estimate >= rows[len(rows)-1].Estimate-5e-3) {
		t.Errorf("6-bit (%g) should not be meaningfully below 14-bit (%g)",
			rows[0].Estimate, rows[len(rows)-1].Estimate)
	}
	if len(ADCBitsTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestISRPeriodSweep(t *testing.T) {
	rows, err := ISRPeriodSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sub-pulse periods observe a real rebound; super-pulse periods miss it.
	if !(rows[0].VDelta > rows[len(rows)-1].VDelta) {
		t.Errorf("fast sampling VDelta (%g) should exceed slow sampling (%g)",
			rows[0].VDelta, rows[len(rows)-1].VDelta)
	}
	if len(ISRPeriodTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestESRLossSweep(t *testing.T) {
	rows, err := ESRLossSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	paperUnsafe := 0
	for _, r := range rows {
		// The refined estimator must be safe everywhere.
		if harness.Classify(r.WithLoss, r.GroundTruth) == harness.Unsafe {
			t.Errorf("%s: with-I²R estimate %g unsafe vs truth %g", r.Load, r.WithLoss, r.GroundTruth)
		}
		// And it must never be below the paper-exact variant.
		if r.WithLoss < r.PaperExact-1e-9 {
			t.Errorf("%s: adding a positive energy term lowered the estimate", r.Load)
		}
		if r.PaperVerdict == harness.Unsafe {
			paperUnsafe++
		}
	}
	// The paper-exact variant reproduces the paper's documented failures on
	// at least one energy-heavy load.
	if paperUnsafe == 0 {
		t.Error("paper-exact Algorithm 1 never failed — the documented weakness is not reproduced")
	}
	if len(ESRLossTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestReprofile(t *testing.T) {
	rows, err := Reprofile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At the initial regime the stale estimate IS the fresh estimate.
	if rows[0].Stale != rows[0].Fresh {
		t.Error("first regime should match stale and fresh")
	}
	if rows[0].StaleVerdict == harness.Unsafe {
		t.Error("estimate unsafe at its own profiling regime")
	}
	// At the weakest regime the stale estimate must have gone unsafe while
	// the fresh one stays valid.
	last := rows[len(rows)-1]
	if last.StaleVerdict != harness.Unsafe {
		t.Errorf("stale estimate should be unsafe at 0.5 mW: %+v", last)
	}
	if last.FreshVerdict == harness.Unsafe {
		t.Errorf("fresh estimate unsafe: %+v", last)
	}
	// The change detector fires at least once on the way down.
	fired := false
	for _, r := range rows {
		fired = fired || r.Triggered
	}
	if !fired {
		t.Error("change detector never fired")
	}
	if len(ReprofileTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestIntermittentExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("intermittent sims are seconds-long")
	}
	rows, err := Intermittent(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byGate := map[string]IntermittentRow{}
	for _, r := range rows {
		byGate[r.Gate] = r
	}
	opp, cul := byGate["opportunistic"], byGate["culpeo"]
	if cul.Reexecutions != 0 || cul.WastedPct != 0 {
		t.Errorf("culpeo gate wasted work: %+v", cul)
	}
	if opp.Reexecutions == 0 {
		t.Errorf("opportunistic gate never failed — scenario not marginal: %+v", opp)
	}
	if cul.Iterations < opp.Iterations*7/10 || cul.Iterations == 0 {
		t.Errorf("culpeo iterations (%d) collapsed vs opportunistic (%d)", cul.Iterations, opp.Iterations)
	}
	if len(IntermittentTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestDecomposeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("intermittent sims are seconds-long")
	}
	rows, err := Decompose(context.Background(), 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Feasible {
		t.Error("whole job should be infeasible")
	}
	last := rows[len(rows)-1]
	if !last.Feasible {
		t.Error("finest split should be feasible")
	}
	if last.IterationsIn == 0 {
		t.Error("feasible split never completed an iteration")
	}
	if len(DecomposeTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestChargeTypesExperiment(t *testing.T) {
	r, err := ChargeTypes()
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyOutcome {
		t.Error("energy-typed launch should fail")
	}
	if !r.VoltageOutcome {
		t.Error("voltage-typed launch should complete")
	}
	if r.EnergyTypeFails == 0 {
		t.Error("voltage checker should reject the energy typing")
	}
	if !(r.VoltageLevel > r.EnergyLevel+0.2) {
		t.Errorf("voltage level %g should exceed energy level %g", r.VoltageLevel, r.EnergyLevel)
	}
	if len(r.Table().Rows) != 2 {
		t.Error("table incomplete")
	}
}

func TestProbabilisticExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep is seconds-long")
	}
	rows, err := Probabilistic()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EnergyProb > 0.2 {
			t.Errorf("target %g: energy bound completes %g — should be doomed", r.Target, r.EnergyProb)
		}
		if r.VoltProb < r.Target-0.1 {
			t.Errorf("target %g: voltage bound completes only %g", r.Target, r.VoltProb)
		}
		if !(r.VoltBound > r.EnergyBound) {
			t.Errorf("target %g: bounds not ordered", r.Target)
		}
	}
	if len(ProbTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

func TestCharactExperiment(t *testing.T) {
	rows, err := Charact()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Flat bank reads flat; the supercap model descends with frequency
	// (rows are widest→narrowest pulse, i.e. lowest→highest frequency).
	for _, r := range rows {
		if r.FlatESR < 4.4 || r.FlatESR > 5.6 {
			t.Errorf("flat bank ESR at %g Hz = %g, want ≈5", r.Hz, r.FlatESR)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Hz < last.Hz {
		// Ensure ordering assumption: first row is the shortest pulse.
		first, last = last, first
	}
	if !(first.SuperESR < last.SuperESR-1) {
		t.Errorf("supercap ESR should fall with frequency: %g @%gHz vs %g @%gHz",
			first.SuperESR, first.Hz, last.SuperESR, last.Hz)
	}
	if len(CharactTable(rows).Rows) != len(rows) {
		t.Error("table incomplete")
	}
}

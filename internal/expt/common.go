package expt

import (
	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/powersys"
)

// flatESR wraps capacitor.Flat for brevity inside this package.
func flatESR(ohm float64) *capacitor.ESRCurve { return capacitor.Flat(ohm) }

// capybaraModel builds the Culpeo power model for a Capybara-style
// configuration, with an ESR-versus-frequency curve measured from the
// power system (Section IV-B): the supercapacitor bank shows higher ESR to
// slow loads than to fast ones.
func capybaraModel(cfg powersys.Config) core.PowerModel {
	return core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   flatESR(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
}

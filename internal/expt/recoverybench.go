// The recovery benchmark behind the bench artifact's Schema 6 "recovery"
// section: build a journaled session table at scale, snapshot it, and
// measure how long a cold restart takes to walk back to serving state —
// journal scan plus snapshot decode plus record replay, the exact boot
// path culpeod runs before it starts listening. A fleet operator reads
// the recorded figure as the restart budget a kill -9 costs.
package expt

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/core"
	"culpeo/internal/journal"
	"culpeo/internal/powersys"
	"culpeo/internal/session"
)

// RecoveryResult is one measured recovery at a given session count.
type RecoveryResult struct {
	Sessions       int
	ObsPerSession  int
	SnapshotBytes  int64
	RecoverMs      float64 // journal.Open scan + Table.Replay, wall clock
	SessionsPerSec float64
	AppendNsPerOp  float64 // one journaled append, enqueue to durable ack
}

// RecoveryBench builds a journaled table of `sessions` device sessions
// (obsPerSession folded observations each), snapshots and closes it, then
// measures a cold recovery into a fresh table. The journal runs with
// fsync off: the subject is the replay path, not the disk.
func RecoveryBench(ctx context.Context, sessions, obsPerSession int) (*RecoveryResult, error) {
	if sessions <= 0 {
		sessions = 100_000
	}
	if obsPerSession <= 0 {
		obsPerSession = 2
	}
	dir, err := os.MkdirTemp("", "culpeo-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	jdir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		return nil, err
	}
	j, _, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		return nil, err
	}
	model := capybaraModel(powersys.Capybara())
	cfg := session.Config{MaxSessions: sessions + 64, Ring: 8, Journal: j}
	tbl := session.NewTable(cfg)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < sessions; i++ {
		if err := ctx.Err(); err != nil {
			j.Close()
			return nil, err
		}
		dev := fmt.Sprintf("rec-%06d", i)
		if _, err := tbl.Attach(dev, model, 0, nil); err != nil {
			j.Close()
			return nil, fmt.Errorf("recovery: attach %s: %w", dev, err)
		}
		obs := make([]api.StreamObservation, obsPerSession)
		for k := range obs {
			sm := genCrashSample(rng)
			obs[k] = api.StreamObservation{Seq: uint64(k + 1), VStart: sm.VStart, VMin: sm.VMin, VFinal: sm.VFinal, Failed: sm.Failed}
		}
		if _, err := tbl.Fold(dev, obs, false); err != nil {
			j.Close()
			return nil, fmt.Errorf("recovery: fold %s: %w", dev, err)
		}
	}
	if err := tbl.JournalSnapshot(); err != nil {
		j.Close()
		return nil, fmt.Errorf("recovery: snapshot: %w", err)
	}
	if err := j.Close(); err != nil {
		return nil, err
	}
	var snapBytes int64
	entries, err := os.ReadDir(jdir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			if fi, err := e.Info(); err == nil {
				snapBytes += fi.Size()
			}
		}
	}

	// The measured section: exactly what culpeod does before listening.
	resolve := func([]byte) (core.PowerModel, error) { return model, nil }
	t0 := time.Now()
	j2, rec, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		return nil, err
	}
	tbl2 := session.NewTable(session.Config{MaxSessions: sessions + 64, Ring: 8})
	st, err := tbl2.Replay(rec, resolve)
	wall := time.Since(t0)
	j2.Close()
	if err != nil {
		return nil, fmt.Errorf("recovery: replay: %w", err)
	}
	if st.Sessions != sessions {
		return nil, fmt.Errorf("recovery: replayed %d sessions, want %d", st.Sessions, sessions)
	}

	// Append cost on a separate journal so the garbage payload cannot
	// pollute the replayable record stream above.
	adir := filepath.Join(dir, "append")
	if err := os.MkdirAll(adir, 0o755); err != nil {
		return nil, err
	}
	aj, _, err := journal.Open(journal.Options{Dir: adir})
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 192)
	const appendN = 20_000
	a0 := time.Now()
	for i := 0; i < appendN; i++ {
		if err := aj.Append(payload).Wait(); err != nil {
			aj.Close()
			return nil, fmt.Errorf("recovery: append bench: %w", err)
		}
	}
	appendNs := float64(time.Since(a0).Nanoseconds()) / float64(appendN)
	if err := aj.Close(); err != nil {
		return nil, err
	}

	return &RecoveryResult{
		Sessions:       sessions,
		ObsPerSession:  obsPerSession,
		SnapshotBytes:  snapBytes,
		RecoverMs:      wall.Seconds() * 1000,
		SessionsPerSec: float64(sessions) / wall.Seconds(),
		AppendNsPerOp:  appendNs,
	}, nil
}

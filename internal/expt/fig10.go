package expt

import (
	"context"
	"fmt"

	"culpeo/internal/baseline"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/sweep"
)

// Fig10Row is one bar of Figure 10: one estimator's error on one load.
type Fig10Row struct {
	Load        string
	Shape       string // "uniform" or "pulse"
	Estimator   string
	GroundTruth float64
	Estimate    float64
	ErrorPct    float64
	Verdict     harness.Verdict
}

// Fig10Estimators lists the figure's estimators in display order.
var Fig10Estimators = []string{"Catnap", "Culpeo-PG", "Culpeo-ISR", "Culpeo-uArch"}

// fig10Estimate runs one estimator on one load. Every call builds its own
// power system, so concurrent calls share nothing mutable.
func fig10Estimate(h *harness.Harness, name string, task load.Profile) (float64, error) {
	model := capybaraModel(h.Config())
	switch name {
	case "Catnap":
		return baseline.Estimate(baseline.CatnapMeasured, h, task), nil
	case "Culpeo-PG":
		est, err := profiler.PG{Model: model}.Estimate(task)
		return est.VSafe, err
	case "Culpeo-ISR":
		sys := h.NewSystem()
		sys.Monitor().Force(true)
		est, err := profiler.REstimate(model, sys, profiler.NewISRProbe(sys.VTerm), task, 0)
		return est.VSafe, err
	case "Culpeo-uArch":
		sys := h.NewSystem()
		sys.Monitor().Force(true)
		est, err := profiler.REstimate(model, sys, profiler.NewUArchProbe(sys.VTerm), task, 0)
		return est.VSafe, err
	}
	return 0, fmt.Errorf("expt: unknown estimator %q", name)
}

// Fig10 evaluates CatNap and the three Culpeo implementations on the nine
// uniform and nine pulsed loads of Figure 10. Each load is one sweep cell:
// the cell finds the brute-force ground truth and scores all four
// estimators against it on cell-private power systems.
func Fig10(ctx context.Context) ([]Fig10Row, error) {
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	h.Fast = FastEnabled(ctx)

	uniform, pulse := load.Fig10Loads()
	type cell struct {
		task  load.Profile
		shape string
	}
	cells := make([]cell, 0, len(uniform)+len(pulse))
	for _, task := range uniform {
		cells = append(cells, cell{task, "uniform"})
	}
	for _, task := range pulse {
		cells = append(cells, cell{task, "pulse"})
	}

	// With the batch lane enabled, all 18 ground-truth searches advance in
	// lockstep through one SoA batch per bisection round before the sweep
	// starts; the cells then score estimators against the precomputed
	// truths. The exact batch lane is byte-identical to the scalar search,
	// so the golden output is the same either way.
	var gts []float64
	switch {
	case BatchEnabled(ctx):
		reqs := make([]harness.GroundTruthReq, len(cells))
		for i, c := range cells {
			reqs[i] = harness.GroundTruthReq{Task: c.task}
		}
		gts, err = h.GroundTruthBatch(ctx, reqs)
		if err != nil {
			return nil, fmt.Errorf("expt: fig10 ground truth: %w", err)
		}
	case WarmEnabled(ctx):
		// Warm-started: the figure's loads are two current ladders (nine
		// uniform, nine pulse), each monotone in V_safe, so each ladder is
		// one warm chain — every search after a ladder's first is hinted by
		// its predecessor's result ± a guard band. The two chains are
		// internally sequential (a hint needs its predecessor) but
		// independent of each other, so they run as two parallel sweep
		// cells; the per-load scoring sweep below keeps its full
		// parallelism either way.
		chains := [][]int{make([]int, 0, len(uniform)), make([]int, 0, len(pulse))}
		for i, c := range cells {
			if c.shape == "uniform" {
				chains[0] = append(chains[0], i)
			} else {
				chains[1] = append(chains[1], i)
			}
		}
		gts = make([]float64, len(cells))
		if _, err = sweep.Map(ctx, chains, func(cctx context.Context, _ int, chain []int) (struct{}, error) {
			var hint *harness.Bracket
			for _, i := range chain {
				gt, err := h.GroundTruthHinted(cctx, cells[i].task, 0, hint)
				if err != nil {
					return struct{}{}, fmt.Errorf("expt: fig10 %s: %w", cells[i].task.Name(), err)
				}
				gts[i] = gt
				hint = &harness.Bracket{Lo: gt - harness.WarmGuardBand, Hi: gt + harness.WarmGuardBand}
			}
			return struct{}{}, nil
		}); err != nil {
			return nil, err
		}
	}

	perLoad, err := sweep.Map(ctx, cells, func(cctx context.Context, i int, c cell) ([]Fig10Row, error) {
		var gt float64
		if gts != nil {
			gt = gts[i]
		} else {
			var err error
			gt, err = h.GroundTruthCtx(cctx, c.task, 0)
			if err != nil {
				return nil, fmt.Errorf("expt: fig10 %s: %w", c.task.Name(), err)
			}
		}
		rows := make([]Fig10Row, 0, len(Fig10Estimators))
		for _, name := range Fig10Estimators {
			est, err := fig10Estimate(h, name, c.task)
			if err != nil {
				return nil, fmt.Errorf("expt: fig10 %s/%s: %w", c.task.Name(), name, err)
			}
			rows = append(rows, Fig10Row{
				Load:        c.task.Name(),
				Shape:       c.shape,
				Estimator:   name,
				GroundTruth: gt,
				Estimate:    est,
				ErrorPct:    h.ErrorPercent(est, gt),
				Verdict:     harness.Classify(est, gt),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}

	var rows []Fig10Row
	for _, r := range perLoad {
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig10Table renders the rows.
func Fig10Table(rows []Fig10Row) *Table {
	t := &Table{
		Title:  "Figure 10: V_safe error vs ground truth (% of operating range)",
		Header: []string{"load", "shape", "estimator", "truth V", "estimate V", "error %", "verdict"},
		Caption: "Energy-only CatNap misses the ESR drop on pulse+tail loads " +
			"(large negative errors); all Culpeo variants stay safe and within " +
			"a few percent. Culpeo-µArch is slightly more conservative than " +
			"ISR except on 1 ms pulses, where ISR's 1 ms sampling misses V_min.",
	}
	for _, r := range rows {
		t.Add(r.Load, r.Shape, r.Estimator, f3(r.GroundTruth), f3(r.Estimate), f1(r.ErrorPct), r.Verdict.String())
	}
	return t
}

package expt

import (
	"fmt"

	"culpeo/internal/baseline"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// Fig10Row is one bar of Figure 10: one estimator's error on one load.
type Fig10Row struct {
	Load        string
	Shape       string // "uniform" or "pulse"
	Estimator   string
	GroundTruth float64
	Estimate    float64
	ErrorPct    float64
	Verdict     harness.Verdict
}

// Fig10Estimators lists the figure's estimators in display order.
var Fig10Estimators = []string{"Catnap", "Culpeo-PG", "Culpeo-ISR", "Culpeo-uArch"}

// Fig10 evaluates CatNap and the three Culpeo implementations on the nine
// uniform and nine pulsed loads of Figure 10.
func Fig10() ([]Fig10Row, error) {
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	model := capybaraModel(cfg)
	pg := profiler.PG{Model: model}

	estimate := func(name string, task load.Profile) (float64, error) {
		switch name {
		case "Catnap":
			return baseline.Estimate(baseline.CatnapMeasured, h, task), nil
		case "Culpeo-PG":
			est, err := pg.Estimate(task)
			return est.VSafe, err
		case "Culpeo-ISR":
			sys := h.NewSystem()
			sys.Monitor().Force(true)
			est, err := profiler.REstimate(model, sys, profiler.NewISRProbe(sys.VTerm), task, 0)
			return est.VSafe, err
		case "Culpeo-uArch":
			sys := h.NewSystem()
			sys.Monitor().Force(true)
			est, err := profiler.REstimate(model, sys, profiler.NewUArchProbe(sys.VTerm), task, 0)
			return est.VSafe, err
		}
		return 0, fmt.Errorf("expt: unknown estimator %q", name)
	}

	uniform, pulse := load.Fig10Loads()
	var rows []Fig10Row
	run := func(tasks []load.Profile, shape string) error {
		for _, task := range tasks {
			gt, err := h.GroundTruth(task)
			if err != nil {
				return fmt.Errorf("expt: fig10 %s: %w", task.Name(), err)
			}
			for _, name := range Fig10Estimators {
				est, err := estimate(name, task)
				if err != nil {
					return fmt.Errorf("expt: fig10 %s/%s: %w", task.Name(), name, err)
				}
				rows = append(rows, Fig10Row{
					Load:        task.Name(),
					Shape:       shape,
					Estimator:   name,
					GroundTruth: gt,
					Estimate:    est,
					ErrorPct:    h.ErrorPercent(est, gt),
					Verdict:     harness.Classify(est, gt),
				})
			}
		}
		return nil
	}
	if err := run(uniform, "uniform"); err != nil {
		return nil, err
	}
	if err := run(pulse, "pulse"); err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig10Table renders the rows.
func Fig10Table(rows []Fig10Row) *Table {
	t := &Table{
		Title:  "Figure 10: V_safe error vs ground truth (% of operating range)",
		Header: []string{"load", "shape", "estimator", "truth V", "estimate V", "error %", "verdict"},
		Caption: "Energy-only CatNap misses the ESR drop on pulse+tail loads " +
			"(large negative errors); all Culpeo variants stay safe and within " +
			"a few percent. Culpeo-µArch is slightly more conservative than " +
			"ISR except on 1 ms pulses, where ISR's 1 ms sampling misses V_min.",
	}
	for _, r := range rows {
		t.Add(r.Load, r.Shape, r.Estimator, f3(r.GroundTruth), f3(r.Estimate), f1(r.ErrorPct), r.Verdict.String())
	}
	return t
}

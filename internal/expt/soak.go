package expt

import (
	"context"
	"fmt"

	"culpeo/internal/core"
	"culpeo/internal/faults"
	"culpeo/internal/intermittent"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/sweep"
)

// soakHarvest is the incoming power during the soak: enough to recharge in
// seconds, but below the pipeline's flat-out burn rate, so every gate ends
// up riding its dispatch threshold — the regime where wrong thresholds
// brown the device out.
const soakHarvest = 10e-3

// SoakOpts configures the robustness soak.
type SoakOpts struct {
	// Horizon is the simulated duration per cell (s); 0 = 20.
	Horizon float64
}

// SoakRow is one (gate, fault) cell of the robustness matrix.
type SoakRow struct {
	Gate       string
	Fault      string // fault class/severity label
	Spec       string // the fault-spec string the cell ran under
	Iterations int
	// Violations counts Theorem-1 violations: dispatched tasks destroyed
	// by a power failure (re-executions).
	Violations    int
	Completed     int // committed task executions
	Escalations   int
	CompletionPct float64 // committed / attempted
	WastedPct     float64 // energy burnt by doomed attempts
	// SlowdownX is this cell's latency overhead: nominal iterations of the
	// same gate divided by this cell's iterations (1.0 = no overhead; 0
	// when the cell made no progress).
	SlowdownX  float64
	LiveLocked bool
}

// soakProgram is the pipeline under soak: sense → process → report. The
// report task's ESR drop (~0.3 V on the fresh 15 Ω bank, ~0.6 V at end of
// life) is what separates energy-only from V_safe dispatch.
func soakProgram() intermittent.Program {
	return intermittent.Program{
		Name: "soak-pipeline",
		Tasks: []intermittent.AtomicTask{
			{ID: "sample", Profile: load.IMURead(16)},
			{ID: "process", Profile: load.FFT(128)},
			{ID: "report", Profile: load.NewUniform(10e-3, 20e-3)},
		},
	}
}

// soakFault is one fault class/severity of the matrix.
type soakFault struct {
	Name string
	Spec string
}

// soakFaults is the injected-fault matrix: supply, storage and
// measurement-chain classes, each at a mild and a harsh severity.
func soakFaults() []soakFault {
	return []soakFault{
		{"none", ""},
		{"dropout/mild", "dropout:at=0.5,dur=200ms,period=2s"},
		{"dropout/harsh", "dropout:at=0.3,dur=600ms,period=1.2s"},
		{"sag/mild", "sag:frac=0.7"},
		{"sag/harsh", "sag:frac=0.35"},
		{"leak/mild", "leak:i=500uA"},
		{"leak/harsh", "leak:i=3mA,at=1s,dur=1s,period=3s"},
		{"esr/drift", "esr:factor=1.5"},
		{"age/mid", "age:life=0.5"},
		{"age/eol", "age:life=1"},
		{"adc/mild", "seed:11;offset:v=8mV;noise:sigma=2mV"},
		{"adc/harsh", "seed:11;offset:v=10mV;gain:factor=1.003;noise:sigma=3mV;stuck:bit=2;jitter:sigma=200us"},
	}
}

// soakGates names the dispatch policies under soak: the ESR-blind
// energy-only baseline, the Culpeo V_safe gate, and the Culpeo gate with
// the adaptive guard margin plus degradation (backoff + escalation).
var soakGates = []string{"energy", "culpeo", "culpeo+adaptive"}

// Soak runs the estimator × fault class × severity robustness matrix on the
// sweep pool: every (gate, fault) pair is an independent cell owning its
// injector, storage network, gate and runtime. Gates are built by
// (re)profiling on the faulted hardware through the faulted measurement
// chain — the Section V-B story: Culpeo re-profiles when conditions change,
// so wear and chain error are captured in the estimates, and the adaptive
// margin guards the residual.
func Soak(ctx context.Context, opts SoakOpts) ([]SoakRow, error) {
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 20
	}
	cfg, err := intermittentConfig()
	if err != nil {
		return nil, err
	}
	prog := soakProgram()

	type cell struct {
		gate  string
		fault soakFault
	}
	var cells []cell
	for _, g := range soakGates {
		for _, f := range soakFaults() {
			cells = append(cells, cell{g, f})
		}
	}

	rows, err := sweep.Map(ctx, cells, func(_ context.Context, _ int, c cell) (SoakRow, error) {
		return soakCell(cfg, prog, c.gate, c.fault, horizon)
	})
	if err != nil {
		return nil, err
	}

	// Latency overhead versus the same gate's nominal cell.
	nominal := map[string]int{}
	for _, r := range rows {
		if r.Fault == "none" {
			nominal[r.Gate] = r.Iterations
		}
	}
	for i := range rows {
		if n, it := nominal[rows[i].Gate], rows[i].Iterations; it > 0 && n > 0 {
			rows[i].SlowdownX = float64(n) / float64(it)
		}
	}
	return rows, nil
}

// soakCell runs one (gate, fault) combination.
func soakCell(cfg powersys.Config, prog intermittent.Program, gateName string, fault soakFault, horizon float64) (SoakRow, error) {
	in, err := faults.NewFromString(fault.Spec)
	if err != nil {
		return SoakRow{}, err
	}

	// The cell's hardware: cloned storage with wear faults applied.
	c := cfg
	c.Storage = cfg.Storage.Clone()
	in.ApplyStorage(c.Storage)
	model := capybaraModel(c)

	var gate intermittent.Gate
	if gateName == "energy" {
		gate, err = intermittent.NewEnergyGate(c, prog)
	} else {
		gate, err = soakCulpeoGate(c, model, prog, in)
	}
	if err != nil {
		return SoakRow{}, fmt.Errorf("expt: soak %s/%s gate: %w", gateName, fault.Name, err)
	}

	cc := c
	cc.Storage = c.Storage.Clone()
	sys, err := powersys.New(cc)
	if err != nil {
		return SoakRow{}, err
	}
	if in != nil {
		sys.Inject(in)
	}
	if err := sys.ChargeTo(cc.VHigh); err != nil {
		return SoakRow{}, err
	}

	rt := &intermittent.Runtime{
		Sys: sys, Harvest: soakHarvest, Gate: gate, MaxAttempts: 1000,
		Read: in.WrapRead(sys.VTerm, sys.Now),
	}
	if gateName == "culpeo+adaptive" {
		// The base margin budgets the measurement chain's worst-case error
		// (offset + gain at V_high + noise peaks + a stuck bit ≈ 50 mV for
		// the harsh ADC row) the way a deployment sizes it from the ADC's
		// total-unadjusted-error spec; inflation then guards whatever the
		// budget missed.
		rt.Margin = &core.AdaptiveMargin{
			Base: 50e-3, Max: 200e-3, Floor: 10e-3, Inflate: 2, DecayAfter: 4,
		}
		rt.Degrade = &intermittent.Degrade{Model: &model}
	}
	res, err := rt.Run(prog, horizon)
	if err != nil {
		return SoakRow{}, fmt.Errorf("expt: soak %s/%s: %w", gateName, fault.Name, err)
	}

	row := SoakRow{
		Gate: gateName, Fault: fault.Name, Spec: fault.Spec,
		Iterations: res.Iterations, Violations: res.Reexecutions,
		Completed: res.TasksCompleted, Escalations: res.Escalations,
		LiveLocked: res.LiveLocked,
	}
	if att := res.TasksCompleted + res.Reexecutions; att > 0 {
		row.CompletionPct = float64(res.TasksCompleted) / float64(att) * 100
	}
	if total := res.WastedEnergy + res.UsefulEnergy; total > 0 {
		row.WastedPct = res.WastedEnergy / total * 100
	}
	return row, nil
}

// soakCulpeoGate builds the Culpeo gate the way the runtime would on the
// deployed device: Culpeo-R profiling of each task on the (possibly worn)
// hardware, observed through the (possibly faulty) measurement chain, at
// zero harvest (the worst case).
func soakCulpeoGate(c powersys.Config, model core.PowerModel, prog intermittent.Program, in *faults.Injector) (intermittent.CulpeoGate, error) {
	vs := make([]float64, len(prog.Tasks))
	for i, task := range prog.Tasks {
		cc := c
		cc.Storage = c.Storage.Clone()
		sys, err := powersys.New(cc)
		if err != nil {
			return intermittent.CulpeoGate{}, err
		}
		if in != nil {
			sys.Inject(in)
		}
		if err := sys.ChargeTo(cc.VHigh); err != nil {
			return intermittent.CulpeoGate{}, err
		}
		sys.Monitor().Force(true)
		probe := profiler.NewISRProbe(in.WrapRead(sys.VTerm, sys.Now))
		est, err := profiler.REstimate(model, sys, in.WrapSampler(probe), task.Profile, 0)
		if err != nil {
			return intermittent.CulpeoGate{}, err
		}
		vs[i] = est.VSafe
	}
	return intermittent.CulpeoGate{VSafe: vs}, nil
}

// SoakTable renders the matrix.
func SoakTable(rows []SoakRow) *Table {
	t := &Table{
		Title: "Robustness soak: dispatch gates × injected faults (15 mF / 15 Ω buffer)",
		Header: []string{"gate", "fault", "iterations", "violations",
			"completion %", "wasted %", "escalations", "slowdown ×"},
		Caption: "A violation is a dispatched task destroyed by a power " +
			"failure — the event Theorem 1 promises never happens. The " +
			"energy-only gate violates under nominal conditions already and " +
			"degrades further under faults; the Culpeo gate re-profiled on " +
			"the faulted hardware sustains the guarantee, trading throughput " +
			"(slowdown, stalls at end-of-life) instead of correctness.",
	}
	for _, r := range rows {
		slow := "-"
		if r.SlowdownX > 0 {
			slow = f1(r.SlowdownX)
		}
		t.Add(r.Gate, r.Fault,
			f0(float64(r.Iterations)),
			f0(float64(r.Violations)),
			f1(r.CompletionPct),
			f1(r.WastedPct),
			f0(float64(r.Escalations)),
			slow,
		)
	}
	return t
}

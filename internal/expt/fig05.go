package expt

import (
	"context"
	"fmt"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/sched"
	"culpeo/internal/sweep"
)

// Fig5Result reproduces Figure 5: CatNap builds a feasible-looking schedule
// of sense (every 3 τ) and radio (every 6.5 τ) from energy estimates, but
// the radio fails when dispatched at an energy-sufficient, voltage-
// insufficient level.
type Fig5Result struct {
	CatNapNeedRadio float64 // CatNap's required voltage for radio
	CulpeoNeedRadio float64 // Culpeo's V_safe for radio
	// DispatchV is the voltage CatNap dispatches the radio at in the failing
	// slot (sense has just run in the same discharge).
	DispatchV float64
	// RadioFailed records the outcome of the energy-feasible dispatch.
	RadioFailed bool
	VMin        float64
	// CulpeoWouldDispatch reports whether Culpeo's test would have allowed
	// the same dispatch (it must not).
	CulpeoWouldDispatch bool
}

// fig5Tasks builds the scenario's task set: sense is the IMU-style read,
// radio is a 50 mA/10 ms pulse.
func fig5Tasks() (sched.Task, sched.Task) {
	sense := sched.Task{ID: "sense", Profile: load.IMURead(16), Priority: sched.High}
	radio := sched.Task{ID: "radio", Profile: load.NewUniform(50e-3, 10e-3), Priority: sched.High}
	return sense, radio
}

// fig5Policy builds and prepares one policy on its own device and power
// system — one sweep cell's worth of isolated state.
func fig5Policy(mk func(cfg powersys.Config) sched.Policy) (sched.Policy, error) {
	cfg := powersys.Capybara()
	cfg.DT = 40e-6
	sys, err := powersys.New(cfg)
	if err != nil {
		return nil, err
	}
	sense, radio := fig5Tasks()
	pol := mk(cfg)
	dev, err := sched.NewDevice(sys, 0, []sched.Task{sense, radio}, nil, sched.NewCatNapPolicy())
	if err != nil {
		return nil, err
	}
	if err := pol.Prepare(dev); err != nil {
		return nil, err
	}
	return pol, nil
}

// Fig5 runs the scenario with tick τ = 1 s. The three requirement probes
// (CatNap on radio, Culpeo on radio, CatNap on the sense+radio pair) are
// independent binary searches over isolated devices, so they run as sweep
// cells.
func Fig5(ctx context.Context) (Fig5Result, error) {
	newCat := func(powersys.Config) sched.Policy { return sched.NewCatNapPolicy() }
	newCul := func(cfg powersys.Config) sched.Policy { return sched.NewCulpeoPolicy(capybaraModel(cfg)) }

	type probe struct {
		mk    func(powersys.Config) sched.Policy
		chain []core.TaskID
	}
	probes := []probe{
		{newCat, []core.TaskID{"radio"}},
		{newCul, []core.TaskID{"radio"}},
		{newCat, []core.TaskID{"sense", "radio"}},
	}
	type probed struct {
		need float64
		pol  sched.Policy
	}
	cells, err := sweep.Map(ctx, probes, func(_ context.Context, _ int, p probe) (probed, error) {
		pol, err := fig5Policy(p.mk)
		if err != nil {
			return probed{}, err
		}
		return probed{need: needOf(pol, p.chain), pol: pol}, nil
	})
	if err != nil {
		return Fig5Result{}, fmt.Errorf("expt: fig5: %w", err)
	}

	out := Fig5Result{
		CatNapNeedRadio: cells[0].need,
		CulpeoNeedRadio: cells[1].need,
	}

	// The failing slot of Figure 5(c): sense and radio share one discharge
	// (τ6 → τ7). CatNap deems the pair feasible whenever the energy sum
	// fits, so dispatch at exactly its combined requirement.
	sense, radio := fig5Tasks()
	both := []core.TaskID{"sense", "radio"}
	dispatch := cells[2].need
	cfg := powersys.Capybara()
	trial, err := powersys.New(powersys.Capybara())
	if err != nil {
		return out, err
	}
	if err := trial.DischargeTo(dispatch); err != nil {
		return out, err
	}
	trial.Monitor().Force(true)
	out.DispatchV = dispatch
	res := trial.Run(sense.Profile, powersys.RunOptions{SkipRebound: true})
	if res.Completed {
		res = trial.Run(radio.Profile, powersys.RunOptions{SkipRebound: true})
	}
	out.RadioFailed = !res.Completed || res.VMin < cfg.VOff
	out.VMin = res.VMin
	out.CulpeoWouldDispatch = cells[1].pol.ChainReady(both, dispatch)
	return out, nil
}

// needOf extracts a policy's requirement by probing ChainReady.
func needOf(p sched.Policy, chain []core.TaskID) float64 {
	lo, hi := 0.0, 4.0
	for i := 0; i < 40; i++ {
		mid := 0.5 * (lo + hi)
		if p.ChainReady(chain, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Table renders the Figure 5 narrative.
func (r Fig5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5: CatNap's energy-feasible schedule fails under ESR",
		Header: []string{"quantity", "value"},
		Caption: "CatNap schedules sense+radio in one discharge because the " +
			"energy fits; the radio's ESR drop crosses V_off anyway. Culpeo's " +
			"feasibility test (Theorem 1) refuses the same dispatch.",
	}
	t.Add("CatNap requirement for radio", f3(r.CatNapNeedRadio)+" V")
	t.Add("Culpeo V_safe for radio", f3(r.CulpeoNeedRadio)+" V")
	t.Add("CatNap dispatch voltage (sense+radio)", f3(r.DispatchV)+" V")
	if r.RadioFailed {
		t.Add("outcome at CatNap's dispatch", "RADIO FAILS (V_min "+f3(r.VMin)+" V)")
	} else {
		t.Add("outcome at CatNap's dispatch", "completed (V_min "+f3(r.VMin)+" V)")
	}
	if r.CulpeoWouldDispatch {
		t.Add("Culpeo verdict on same dispatch", "would dispatch")
	} else {
		t.Add("Culpeo verdict on same dispatch", "refuses (infeasible)")
	}
	return t
}

package expt

import (
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/sched"
)

// Fig5Result reproduces Figure 5: CatNap builds a feasible-looking schedule
// of sense (every 3 τ) and radio (every 6.5 τ) from energy estimates, but
// the radio fails when dispatched at an energy-sufficient, voltage-
// insufficient level.
type Fig5Result struct {
	CatNapNeedRadio float64 // CatNap's required voltage for radio
	CulpeoNeedRadio float64 // Culpeo's V_safe for radio
	// DispatchV is the voltage CatNap dispatches the radio at in the failing
	// slot (sense has just run in the same discharge).
	DispatchV float64
	// RadioFailed records the outcome of the energy-feasible dispatch.
	RadioFailed bool
	VMin        float64
	// CulpeoWouldDispatch reports whether Culpeo's test would have allowed
	// the same dispatch (it must not).
	CulpeoWouldDispatch bool
}

// Fig5 runs the scenario: tick τ = 1 s, sense is the IMU-style read, radio
// is a 50 mA/10 ms pulse.
func Fig5() (Fig5Result, error) {
	cfg := powersys.Capybara()
	cfg.DT = 40e-6
	sys, err := powersys.New(cfg)
	if err != nil {
		return Fig5Result{}, err
	}
	sense := sched.Task{ID: "sense", Profile: load.IMURead(16), Priority: sched.High}
	radio := sched.Task{ID: "radio", Profile: load.NewUniform(50e-3, 10e-3), Priority: sched.High}
	dev, err := sched.NewDevice(sys, 0, []sched.Task{sense, radio}, nil, sched.NewCatNapPolicy())
	if err != nil {
		return Fig5Result{}, err
	}
	cat := sched.NewCatNapPolicy()
	if err := cat.Prepare(dev); err != nil {
		return Fig5Result{}, err
	}
	model := core.PowerModel{
		C:    cfg.Storage.TotalCapacitance(),
		ESR:  flatESR(cfg.Storage.Main().ESR),
		VOut: cfg.Output.VOut, VOff: cfg.VOff, VHigh: cfg.VHigh,
		Eff: cfg.Output.Efficiency,
	}
	cul := sched.NewCulpeoPolicy(model)
	if err := cul.Prepare(dev); err != nil {
		return Fig5Result{}, err
	}

	out := Fig5Result{}
	radioChain := []core.TaskID{"radio"}
	out.CatNapNeedRadio = needOf(cat, radioChain)
	out.CulpeoNeedRadio = needOf(cul, radioChain)

	// The failing slot of Figure 5(c): sense and radio share one discharge
	// (τ6 → τ7). CatNap deems the pair feasible whenever the energy sum
	// fits, so dispatch at exactly its combined requirement.
	both := []core.TaskID{"sense", "radio"}
	dispatch := needOf(cat, both)
	trial, err := powersys.New(powersys.Capybara())
	if err != nil {
		return out, err
	}
	if err := trial.DischargeTo(dispatch); err != nil {
		return out, err
	}
	trial.Monitor().Force(true)
	out.DispatchV = dispatch
	res := trial.Run(sense.Profile, powersys.RunOptions{SkipRebound: true})
	if res.Completed {
		res = trial.Run(radio.Profile, powersys.RunOptions{SkipRebound: true})
	}
	out.RadioFailed = !res.Completed || res.VMin < cfg.VOff
	out.VMin = res.VMin
	out.CulpeoWouldDispatch = cul.ChainReady(both, dispatch)
	return out, nil
}

// needOf extracts a policy's requirement by probing ChainReady.
func needOf(p sched.Policy, chain []core.TaskID) float64 {
	lo, hi := 0.0, 4.0
	for i := 0; i < 40; i++ {
		mid := 0.5 * (lo + hi)
		if p.ChainReady(chain, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Table renders the Figure 5 narrative.
func (r Fig5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5: CatNap's energy-feasible schedule fails under ESR",
		Header: []string{"quantity", "value"},
		Caption: "CatNap schedules sense+radio in one discharge because the " +
			"energy fits; the radio's ESR drop crosses V_off anyway. Culpeo's " +
			"feasibility test (Theorem 1) refuses the same dispatch.",
	}
	t.Add("CatNap requirement for radio", f3(r.CatNapNeedRadio)+" V")
	t.Add("Culpeo V_safe for radio", f3(r.CulpeoNeedRadio)+" V")
	t.Add("CatNap dispatch voltage (sense+radio)", f3(r.DispatchV)+" V")
	if r.RadioFailed {
		t.Add("outcome at CatNap's dispatch", "RADIO FAILS (V_min "+f3(r.VMin)+" V)")
	} else {
		t.Add("outcome at CatNap's dispatch", "completed (V_min "+f3(r.VMin)+" V)")
	}
	if r.CulpeoWouldDispatch {
		t.Add("Culpeo verdict on same dispatch", "would dispatch")
	} else {
		t.Add("Culpeo verdict on same dispatch", "refuses (infeasible)")
	}
	return t
}

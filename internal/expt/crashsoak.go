// The crash-chaos soak: the acceptance gate for crash-only culpeod —
// internal/journal, the journaled session table and the recovery boot
// sequence together, exercised the only way that counts: kill -9. It
// builds the real culpeod binary, boots it on a fixed port with a
// write-ahead journal directory, drives seeded device streams through
// client.Stream, SIGKILLs the process mid-soak, restarts it against the
// same directory, and repeats — gating every restart on the journal's
// promises all at once:
//
//  1. zero lost acked observations: a from-empty reattach (no replay
//     tail, so client-side replay cannot paper over server-side loss)
//     shows every acknowledged observation survived the kill;
//  2. zero duplicated folds: the recovered window population is exactly
//     min(folded, ring) — replay deduplication absorbed every retry;
//  3. bit-exact three-way fold parity: the recovered estimate equals the
//     live pre-crash incremental fold equals session.FoldWindow over the
//     expected tail (math.Float64bits, not tolerance), and the recovered
//     margin equals session.FoldMargin over the device's full history;
//  4. zero client rebuilds: the journal preserved every session, so no
//     reattach ever had to re-seed a fresh one from the replay tail;
//  5. closed sessions stay closed: tombstones replay their terminal
//     bit-identically across restarts, and a retried close converges
//     idempotently (closed ack, every observation a duplicate).
//
// The report's event log records only seeded plans and invariant
// outcomes — no ports, timings, record counts or snapshot boundaries,
// which depend on when the snapshot ticker last fired before the kill —
// so `culpeo crashtest` can require three same-seed runs to produce
// byte-identical logs.
package expt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/client"
	"culpeo/internal/core"
	"culpeo/internal/powersys"
	"culpeo/internal/session"
)

// CrashOpts configures one crash-chaos soak run.
type CrashOpts struct {
	// Reduced selects the `make crash` -race configuration: 5 kill cycles
	// over 8 devices instead of the full 20 over 16.
	Reduced bool
	// Cycles overrides the SIGKILL cycle count (<=0: mode default).
	Cycles int
	// Devices overrides the device-session count (<=0: mode default).
	Devices int
	// Batches is observation batches per device per cycle (<=0: default).
	Batches int
	// BatchObs is observations per batch (<=0: default).
	BatchObs int
	// Ring is the session window size (<=0: 8).
	Ring int
	// Seed fixes the observation plan (0: 20260807).
	Seed int64
	// SnapshotEvery is culpeod's -snapshot-every (<=0: 64), small enough
	// that compacted snapshots happen mid-soak and recovery exercises the
	// snapshot + record-suffix path, not just raw replay.
	SnapshotEvery int
	// Binary is a prebuilt culpeod (empty: `go build` one into a tempdir).
	Binary string
	// Dir is the journal directory (empty: a tempdir, removed afterward).
	Dir string
	// Logf, when set, receives each event-log line as it is recorded.
	Logf func(format string, args ...any)
}

// CrashReport is the outcome of one crash-chaos soak. Gate returns nil iff
// every property held; Render writes the human-readable report; Log is the
// deterministic event log `culpeo crashtest` compares across runs.
type CrashReport struct {
	Mode     string
	Cycles   int
	Devices  int
	Batches  int
	BatchObs int
	Ring     int

	Kills    int    // SIGKILLs whose recovery was then verified
	AckedObs uint64 // observations acknowledged across the soak

	LostAcked  int // acked observations missing after a restart
	PhantomObs int // recovered high-water above anything acked
	DupFolds   int // recovered window population != min(folded, ring)

	ParityChecked    int // estimate checks (updates + recovered snapshots)
	ParityMismatches int
	MarginChecked    int
	MarginMismatches int

	Rebuilds int // client streams that had to re-seed a fresh session

	ClosedSessions           int
	CloseRetryChecked        int
	CloseViolations          int
	TerminalReplayChecked    int
	TerminalReplayMismatches int
	RecoveredSessions        int // final restart: live sessions
	RecoveredTombstones      int // final restart: closed tombstones
	Log                      []string
}

// Gate returns nil when the soak satisfied every acceptance property.
func (r *CrashReport) Gate() error {
	switch {
	case r.Kills < r.Cycles:
		return fmt.Errorf("crash: only %d/%d kill cycles completed", r.Kills, r.Cycles)
	case r.LostAcked != 0:
		return fmt.Errorf("crash: %d acked observations lost across restarts", r.LostAcked)
	case r.PhantomObs != 0:
		return fmt.Errorf("crash: %d recovered sessions ahead of anything acked", r.PhantomObs)
	case r.DupFolds != 0:
		return fmt.Errorf("crash: %d recovered windows with duplicated or missing folds", r.DupFolds)
	case r.ParityChecked == 0 || r.MarginChecked == 0:
		return fmt.Errorf("crash: vacuous parity pass (estimate=%d margin=%d checks)", r.ParityChecked, r.MarginChecked)
	case r.ParityMismatches != 0 || r.MarginMismatches != 0:
		return fmt.Errorf("crash: parity mismatches: estimate=%d margin=%d", r.ParityMismatches, r.MarginMismatches)
	case r.Rebuilds != 0:
		return fmt.Errorf("crash: %d client rebuilds — the journal lost sessions the replay tail then re-seeded", r.Rebuilds)
	case r.ClosedSessions == 0 || r.TerminalReplayChecked == 0 || r.CloseRetryChecked == 0:
		return fmt.Errorf("crash: vacuous close pass (closed=%d terminal=%d retry=%d)",
			r.ClosedSessions, r.TerminalReplayChecked, r.CloseRetryChecked)
	case r.TerminalReplayMismatches != 0:
		return fmt.Errorf("crash: %d terminal replays not bit-identical", r.TerminalReplayMismatches)
	case r.CloseViolations != 0:
		return fmt.Errorf("crash: %d close retries did not converge idempotently", r.CloseViolations)
	case r.RecoveredSessions != r.Devices-r.ClosedSessions || r.RecoveredTombstones != r.ClosedSessions:
		return fmt.Errorf("crash: final recovery found %d sessions + %d tombstones, want %d + %d",
			r.RecoveredSessions, r.RecoveredTombstones, r.Devices-r.ClosedSessions, r.ClosedSessions)
	}
	return nil
}

// Render writes the report: configuration, counters, and the event log.
func (r *CrashReport) Render(w io.Writer) error {
	title := "crash soak (" + r.Mode + ")"
	if _, err := fmt.Fprintf(w, "%s\n%s\n%d kill cycles, %d devices, %d batches x %d obs per cycle, ring %d\n\n",
		title, strings.Repeat("=", len(title)), r.Cycles, r.Devices, r.Batches, r.BatchObs, r.Ring); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"kills: %d   acked obs: %d   lost acked: %d   phantom: %d   dup folds: %d\n"+
			"parity: %d checks, %d mismatches   margin: %d checks, %d mismatches\n"+
			"rebuilds: %d   closed: %d   terminal replays: %d (%d mismatches)   close retries: %d (%d violations)\n"+
			"final recovery: %d sessions, %d tombstones\n\nevent log (%d lines):\n",
		r.Kills, r.AckedObs, r.LostAcked, r.PhantomObs, r.DupFolds,
		r.ParityChecked, r.ParityMismatches, r.MarginChecked, r.MarginMismatches,
		r.Rebuilds, r.ClosedSessions, r.TerminalReplayChecked, r.TerminalReplayMismatches,
		r.CloseRetryChecked, r.CloseViolations,
		r.RecoveredSessions, r.RecoveredTombstones, len(r.Log)); err != nil {
		return err
	}
	for _, line := range r.Log {
		if _, err := fmt.Fprintf(w, "  %s\n", line); err != nil {
			return err
		}
	}
	return nil
}

// crashDev is one device's client-side ledger: the full observation
// history (the oracle input), the acked high-water mark, and the terminal
// once closed.
type crashDev struct {
	name      string
	rng       *rand.Rand
	stream    *client.Stream
	history   []api.StreamObservation
	lastBatch []api.StreamObservation
	acked     uint64
	closed    bool
	term      api.StreamUpdate
}

// crashRun carries the soak's moving parts.
type crashRun struct {
	rep    *CrashReport
	model  core.PowerModel
	margin core.AdaptiveMargin
	ring   int
	base   string
	hc     *http.Client
	logf   func(format string, args ...any)
}

// glog records one deterministic event-log line.
func (r *crashRun) glog(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.rep.Log = append(r.rep.Log, line)
	r.logf("%s", line)
}

// crashBuf is a goroutine-safe capture of the daemon's combined output.
type crashBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (b *crashBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.Write(p)
}

func (b *crashBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.String()
}

// crashDaemon is one culpeod incarnation.
type crashDaemon struct {
	cmd *exec.Cmd
	out *crashBuf
}

// kill delivers SIGKILL and reaps the process. The non-nil Wait error is
// the point: the process must die by signal, not exit.
func (d *crashDaemon) kill() {
	if d == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// buildCulpeod builds the real daemon binary into dir. The module root
// comes from `go env GOMOD`, so the soak works from any cwd inside the
// repo (tests run in internal/expt, `culpeo crashtest` wherever).
func buildCulpeod(ctx context.Context, dir string) (string, error) {
	out, err := exec.CommandContext(ctx, "go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("crash: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull || gomod == "off" {
		return "", fmt.Errorf("crash: not inside the culpeo module (GOMOD=%q)", gomod)
	}
	bin := filepath.Join(dir, "culpeod")
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/culpeod")
	cmd.Dir = filepath.Dir(gomod)
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("crash: build culpeod: %v\n%s", err, out)
	}
	return bin, nil
}

// reservePort binds an ephemeral loopback port and releases it: every
// culpeod incarnation reuses the same address, which is what lets one
// long-lived client.Pool ride across restarts.
func reservePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

var crashRecoveredRE = regexp.MustCompile(`journal recovered: (\d+) sessions \((\d+) tombstones`)

// startCulpeod boots one incarnation against the journal directory and
// waits until it has both replayed the journal (the recovery line on
// stdout) and reported ready on /healthz. Returns the recovered live and
// tombstone session counts.
func startCulpeod(ctx context.Context, bin, addr, dir string, snapEvery int) (*crashDaemon, int, int, error) {
	cmd := exec.CommandContext(ctx, bin,
		"-addr", addr,
		"-journal-dir", dir,
		"-snapshot-every", strconv.Itoa(snapEvery),
		"-session-sweep", "0",
	)
	buf := &crashBuf{}
	cmd.Stdout = buf
	cmd.Stderr = buf
	if err := cmd.Start(); err != nil {
		return nil, 0, 0, fmt.Errorf("crash: start culpeod: %w", err)
	}
	d := &crashDaemon{cmd: cmd, out: buf}
	hc := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := crashRecoveredRE.FindStringSubmatch(buf.String()); m != nil {
			if resp, err := hc.Get("http://" + addr + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					sess, _ := strconv.Atoi(m[1])
					tombs, _ := strconv.Atoi(m[2])
					return d, sess, tombs, nil
				}
			}
		}
		if err := ctx.Err(); err != nil {
			d.kill()
			return nil, 0, 0, err
		}
		if time.Now().After(deadline) {
			d.kill()
			return nil, 0, 0, fmt.Errorf("crash: culpeod never became ready; output:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rawSnapshot attaches to a device's session with NO replay tail and
// returns the first downlink frame. This is the honest loss probe: the
// snapshot reflects exactly what the server recovered, with no client-side
// replay to rebuild what a broken journal dropped.
func (r *crashRun) rawSnapshot(ctx context.Context, device string) (api.StreamUpdate, error) {
	body, err := json.Marshal(api.StreamOpenRequest{Device: device})
	if err != nil {
		return api.StreamUpdate{}, err
	}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, r.base+api.PathStream, bytes.NewReader(body))
	if err != nil {
		return api.StreamUpdate{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		return api.StreamUpdate{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return api.StreamUpdate{}, fmt.Errorf("raw attach %s: status %d: %s", device, resp.StatusCode, msg)
	}
	sc := api.NewSSEScanner(resp.Body)
	for {
		ev, err := sc.Next()
		if err != nil {
			return api.StreamUpdate{}, fmt.Errorf("raw attach %s: %w", device, err)
		}
		if ev.Name != api.StreamEventUpdate {
			continue
		}
		var u api.StreamUpdate
		if err := json.Unmarshal(ev.Data, &u); err != nil {
			return api.StreamUpdate{}, fmt.Errorf("raw attach %s: decode: %w", device, err)
		}
		return u, nil
	}
}

// postObs sends one raw /v1/stream/obs request outside the pool — the
// close-retry probe, which must converge even without client.Stream's
// bookkeeping.
func (r *crashRun) postObs(ctx context.Context, req api.StreamObsRequest) (api.StreamObsResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.StreamObsResponse{}, err
	}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, r.base+api.PathStreamObs, bytes.NewReader(body))
	if err != nil {
		return api.StreamObsResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(hreq)
	if err != nil {
		return api.StreamObsResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return api.StreamObsResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return api.StreamObsResponse{}, fmt.Errorf("obs %s: status %d: %s", req.Device, resp.StatusCode, data)
	}
	var out api.StreamObsResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return api.StreamObsResponse{}, err
	}
	return out, nil
}

// oracle computes the reference estimate and margin for a device's current
// history: FoldWindow over the expected tail, FoldMargin over everything.
func (r *crashRun) oracle(d *crashDev) (core.Estimate, bool, float64, error) {
	tail := d.history
	if len(tail) > r.ring {
		tail = tail[len(tail)-r.ring:]
	}
	est, have, err := session.FoldWindow(r.model, tail)
	if err != nil {
		return core.Estimate{}, false, 0, err
	}
	m := session.FoldMargin(r.margin, d.history)
	return est, have, m.Margin(), nil
}

// checkEstimate bit-compares one update (live or recovered) against the
// oracle. what labels the event-log line.
func (r *crashRun) checkEstimate(d *crashDev, what string, u api.StreamUpdate) error {
	est, have, margin, err := r.oracle(d)
	if err != nil {
		return fmt.Errorf("%s %s: oracle: %w", what, d.name, err)
	}
	wantWin := min(len(d.history), r.ring)
	if u.Window != wantWin {
		r.rep.DupFolds++
		r.glog("%s %s: WINDOW %d want %d", what, d.name, u.Window, wantWin)
	}
	r.rep.ParityChecked++
	ok := true
	if have {
		if math.Float64bits(u.VSafe) != math.Float64bits(est.VSafe) ||
			math.Float64bits(u.VDelta) != math.Float64bits(est.VDelta) ||
			math.Float64bits(u.VE) != math.Float64bits(est.VE) {
			r.rep.ParityMismatches++
			ok = false
		}
	} else if u.VSafe != 0 {
		r.rep.ParityMismatches++
		ok = false
	}
	// Launch is defined only once an estimate exists (an empty window's
	// update carries Launch 0, not the bare margin).
	wantLaunch := 0.0
	if have {
		wantLaunch = u.VSafe + u.Margin
	}
	if math.Float64bits(u.Launch) != math.Float64bits(wantLaunch) {
		r.rep.ParityMismatches++
		ok = false
	}
	r.rep.MarginChecked++
	if math.Float64bits(u.Margin) != math.Float64bits(margin) {
		r.rep.MarginMismatches++
		ok = false
	}
	status := "ok"
	if !ok {
		status = "MISMATCH"
	}
	r.glog("%s %s: obs=%d window=%d vsafe=%016x margin=%016x %s",
		what, d.name, u.ObsSeq, u.Window, math.Float64bits(u.VSafe), math.Float64bits(u.Margin), status)
	return nil
}

// verifyDevice gates one device after a restart: terminal replay for
// closed sessions, loss/duplication/parity for live ones — all via the
// no-replay raw attach.
func (r *crashRun) verifyDevice(ctx context.Context, cycle int, d *crashDev) error {
	raw, err := r.rawSnapshot(ctx, d.name)
	if err != nil {
		return fmt.Errorf("cycle %d: verify %s: %w", cycle, d.name, err)
	}
	if d.closed {
		r.rep.TerminalReplayChecked++
		if !raw.Final || raw.Reason != "close" ||
			math.Float64bits(raw.VSafe) != math.Float64bits(d.term.VSafe) ||
			math.Float64bits(raw.Margin) != math.Float64bits(d.term.Margin) ||
			raw.ObsSeq != d.term.ObsSeq || raw.Window != d.term.Window {
			r.rep.TerminalReplayMismatches++
			r.glog("cycle %d: verify %s: TERMINAL MISMATCH got final=%t reason=%q obs=%d", cycle, d.name, raw.Final, raw.Reason, raw.ObsSeq)
			return nil
		}
		r.glog("cycle %d: verify %s: terminal replay ok (vsafe=%016x)", cycle, d.name, math.Float64bits(raw.VSafe))

		// A retried close — the crash ate the client's ack — must converge
		// idempotently: closed ack, every observation a duplicate, the
		// high-water mark unmoved.
		r.rep.CloseRetryChecked++
		res, err := r.postObs(ctx, api.StreamObsRequest{Device: d.name, Observations: d.lastBatch, Close: true})
		if err != nil {
			return fmt.Errorf("cycle %d: close retry %s: %w", cycle, d.name, err)
		}
		if !res.Closed || res.Duplicates != len(d.lastBatch) || res.LastSeq != d.acked {
			r.rep.CloseViolations++
			r.glog("cycle %d: close retry %s: VIOLATION closed=%t dup=%d last=%d", cycle, d.name, res.Closed, res.Duplicates, res.LastSeq)
			return nil
		}
		r.glog("cycle %d: close retry %s: idempotent (dup=%d last=%d)", cycle, d.name, res.Duplicates, res.LastSeq)
		return nil
	}
	want := uint64(len(d.history))
	switch {
	case raw.ObsSeq < want:
		r.rep.LostAcked += int(want - raw.ObsSeq)
		r.glog("cycle %d: verify %s: LOST %d acked obs (recovered %d, acked %d)", cycle, d.name, want-raw.ObsSeq, raw.ObsSeq, want)
	case raw.ObsSeq > want:
		r.rep.PhantomObs += int(raw.ObsSeq - want)
		r.glog("cycle %d: verify %s: PHANTOM obs (recovered %d, acked %d)", cycle, d.name, raw.ObsSeq, want)
	}
	return r.checkEstimate(d, fmt.Sprintf("cycle %d: verify", cycle), raw)
}

// awaitDetach waits for the stream's read loop to notice the killed
// connection; Resume on a still-marked-attached stream is an error.
func awaitDetach(st *client.Stream) error {
	for i := 0; i < 500; i++ {
		if !st.Attached() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("stream still attached 5 s after the kill")
}

// awaitUpdate drains the stream's update channel until an event reflecting
// obsSeq arrives, resuming if the downlink died under us.
func awaitUpdate(ctx context.Context, st *client.Stream, obsSeq uint64) (api.StreamUpdate, error) {
	tick := time.NewTicker(300 * time.Millisecond)
	defer tick.Stop()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case u := <-st.Updates():
			if u.ObsSeq >= obsSeq {
				return u, nil
			}
		case <-tick.C:
			if !st.Attached() {
				snap, err := st.Resume(ctx)
				if err != nil {
					return api.StreamUpdate{}, fmt.Errorf("resume during await: %w", err)
				}
				if snap.ObsSeq >= obsSeq {
					return snap, nil
				}
			}
		case <-deadline:
			return api.StreamUpdate{}, fmt.Errorf("no update for obs %d within 10 s", obsSeq)
		case <-ctx.Done():
			return api.StreamUpdate{}, ctx.Err()
		}
	}
}

// genCrashSample draws one physically valid observation from the device's
// seeded RNG (the same distribution the streaming soak uses).
func genCrashSample(rng *rand.Rand) client.Sample {
	vstart := 2.2 + 0.36*rng.Float64()
	vfinal := vstart - 0.3*rng.Float64()
	vmin := vfinal - 0.4*rng.Float64()
	return client.Sample{VStart: vstart, VMin: vmin, VFinal: vfinal, Failed: rng.Float64() < 0.05}
}

// CrashSoak runs the crash-chaos soak and returns its report. The error
// return covers setup problems (build, port, process management) and
// context cancellation; invariant violations land in the report and are
// judged by Gate.
func CrashSoak(ctx context.Context, opt CrashOpts) (*CrashReport, error) {
	mode := "full"
	cycles, devices, batches, batchObs := 20, 16, 3, 4
	if opt.Reduced {
		mode = "reduced"
		cycles, devices, batches, batchObs = 5, 8, 2, 3
	}
	if opt.Cycles > 0 {
		cycles = opt.Cycles
	}
	if opt.Devices > 0 {
		devices = opt.Devices
	}
	if opt.Batches > 0 {
		batches = opt.Batches
	}
	if opt.BatchObs > 0 {
		batchObs = opt.BatchObs
	}
	ring := opt.Ring
	if ring <= 0 {
		ring = 8
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 20260807
	}
	snapEvery := opt.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 64
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rep := &CrashReport{Mode: mode, Cycles: cycles, Devices: devices, Batches: batches, BatchObs: batchObs, Ring: ring}

	work, err := os.MkdirTemp("", "culpeo-crash-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(work)
	bin := opt.Binary
	if bin == "" {
		if bin, err = buildCulpeod(ctx, work); err != nil {
			return nil, err
		}
	}
	dir := opt.Dir
	if dir == "" {
		dir = filepath.Join(work, "journal")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	addr, err := reservePort()
	if err != nil {
		return nil, err
	}

	pool, err := client.New(client.Config{
		Backends:       []string{"http://" + addr},
		Budget:         30 * time.Second,
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    12,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		RetryAfterCap:  100 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	run := &crashRun{
		rep:    rep,
		model:  capybaraModel(powersys.Capybara()),
		margin: *core.DefaultAdaptiveMargin(),
		ring:   ring,
		base:   "http://" + addr,
		hc:     &http.Client{},
		logf:   logf,
	}
	devs := make([]*crashDev, devices)
	for i := range devs {
		devs[i] = &crashDev{
			name: fmt.Sprintf("crash-%02d", i),
			rng:  rand.New(rand.NewSource(seed ^ (int64(i)*2654435761 + 1))),
		}
	}
	defer func() {
		for _, d := range devs {
			if d.stream != nil {
				d.stream.Close()
			}
		}
	}()

	closeCycle := cycles / 2
	var daemon *crashDaemon
	defer func() { daemon.kill() }()

	for cycle := 0; cycle <= cycles; cycle++ {
		var sess, tombs int
		daemon, sess, tombs, err = startCulpeod(ctx, bin, addr, dir, snapEvery)
		if err != nil {
			return nil, err
		}
		run.glog("cycle %d: recovered %d sessions, %d tombstones", cycle, sess, tombs)

		// Gate the previous cycle's state before folding anything new.
		if cycle > 0 {
			for _, d := range devs {
				if err := run.verifyDevice(ctx, cycle, d); err != nil {
					return nil, err
				}
			}
		}
		if cycle == cycles {
			// The final incarnation exists only to verify the last kill.
			rep.RecoveredSessions, rep.RecoveredTombstones = sess, tombs
			for _, d := range devs {
				if d.stream != nil {
					ss := d.stream.Stats()
					rep.Rebuilds += ss.Rebuilds
				}
			}
			run.glog("final: %d sessions, %d tombstones, %d acked obs", sess, tombs, rep.AckedObs)
			daemon.kill()
			daemon = nil
			break
		}

		// Traffic: resume every live stream and fold seeded batches.
		for _, d := range devs {
			if d.closed {
				continue
			}
			var snap api.StreamUpdate
			if d.stream == nil {
				d.stream, snap, err = pool.OpenStream(ctx, client.StreamConfig{Device: d.name, Ring: ring})
				if err != nil {
					return nil, fmt.Errorf("cycle %d: open %s: %w", cycle, d.name, err)
				}
			} else {
				if err := awaitDetach(d.stream); err != nil {
					return nil, fmt.Errorf("cycle %d: %s: %w", cycle, d.name, err)
				}
				if snap, err = d.stream.Resume(ctx); err != nil {
					return nil, fmt.Errorf("cycle %d: resume %s: %w", cycle, d.name, err)
				}
			}
			if err := run.checkEstimate(d, fmt.Sprintf("cycle %d: attach", cycle), snap); err != nil {
				return nil, err
			}
			for b := 0; b < batches; b++ {
				samples := make([]client.Sample, batchObs)
				for k := range samples {
					samples[k] = genCrashSample(d.rng)
				}
				ack, err := d.stream.Observe(ctx, samples...)
				if err != nil {
					return nil, fmt.Errorf("cycle %d: observe %s: %w", cycle, d.name, err)
				}
				batch := make([]api.StreamObservation, len(samples))
				for k, sm := range samples {
					batch[k] = api.StreamObservation{
						Seq:    uint64(len(d.history) + k + 1),
						VStart: sm.VStart, VMin: sm.VMin, VFinal: sm.VFinal, Failed: sm.Failed,
					}
				}
				d.history = append(d.history, batch...)
				d.lastBatch = batch
				want := uint64(len(d.history))
				if ack.LastSeq != want {
					rep.DupFolds++
					run.glog("cycle %d: %s: ACK last=%d want %d", cycle, d.name, ack.LastSeq, want)
				}
				d.acked = want
				rep.AckedObs += uint64(len(samples))
				u, err := awaitUpdate(ctx, d.stream, want)
				if err != nil {
					return nil, fmt.Errorf("cycle %d: %s: %w", cycle, d.name, err)
				}
				if err := run.checkEstimate(d, fmt.Sprintf("cycle %d: update", cycle), u); err != nil {
					return nil, err
				}
			}
		}

		// Mid-soak, a slice of the fleet closes; every later restart must
		// replay their terminals bit-identically and absorb close retries.
		if cycle == closeCycle {
			for i, d := range devs {
				if i%3 != 2 || d.closed {
					continue
				}
				term, err := d.stream.CloseSession(ctx)
				if err != nil {
					return nil, fmt.Errorf("cycle %d: close %s: %w", cycle, d.name, err)
				}
				if !term.Final || term.Reason != "close" {
					rep.CloseViolations++
					run.glog("cycle %d: close %s: VIOLATION final=%t reason=%q", cycle, d.name, term.Final, term.Reason)
				} else {
					run.glog("cycle %d: close %s: terminal obs=%d vsafe=%016x", cycle, d.name, term.ObsSeq, math.Float64bits(term.VSafe))
				}
				d.closed = true
				d.term = term
				rep.ClosedSessions++
			}
		}

		run.glog("cycle %d: SIGKILL", cycle)
		daemon.kill()
		daemon = nil
		rep.Kills++
	}
	return rep, nil
}

package expt

import (
	"culpeo/internal/capacitor"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/units"
)

// DecouplingRow is one point of the Section II-D decoupling experiment:
// the residual ESR drop of a sustained 50 mA/100 ms load from a 33 mF
// supercapacitor with a given amount of decoupling capacitance.
type DecouplingRow struct {
	Decoupling float64 // farads
	ESRDrop    float64 // volts of drop that rebounds after the load
	DropPctOp  float64 // as a percentage of the 0.96 V operating range
}

// Decoupling sweeps decoupling capacitance from none to the paper's
// abnormally high 6.4 mF.
func Decoupling() ([]DecouplingRow, error) {
	sweep := []float64{0, 400e-6, 800e-6, 1.6e-3, 3.2e-3, 6.4e-3}
	var rows []DecouplingRow
	for _, cd := range sweep {
		branches := []*capacitor.Branch{
			// The paper's 33 mF supercapacitor: its ~200 mV residual drop at
			// 50 mA implies roughly 3 Ω of effective ESR at this pulse width.
			{Name: "main", C: 33e-3, ESR: 3.0, Voltage: 2.56},
		}
		if cd > 0 {
			branches = append(branches, &capacitor.Branch{
				Name: "decoupling", C: cd, ESR: 0.05, Voltage: 2.56,
			})
		}
		net, err := capacitor.NewNetwork(branches...)
		if err != nil {
			return nil, err
		}
		cfg := powersys.Capybara()
		cfg.Storage = net
		sys, err := powersys.New(cfg)
		if err != nil {
			return nil, err
		}
		sys.Monitor().Force(true)
		res := sys.Run(load.NewUniform(50e-3, 100e-3), powersys.RunOptions{})
		drop := res.VFinal - res.VMin // the rebounding (ESR) component
		rows = append(rows, DecouplingRow{
			Decoupling: cd,
			ESRDrop:    drop,
			DropPctOp:  drop / (cfg.VHigh - cfg.VOff) * 100,
		})
	}
	return rows, nil
}

// DecouplingTable renders the rows.
func DecouplingTable(rows []DecouplingRow) *Table {
	t := &Table{
		Title:  "Section II-D: decoupling capacitance vs ESR drop (50 mA / 100 ms, 33 mF bank)",
		Header: []string{"decoupling", "ESR drop", "% of operating range"},
		Caption: "Decoupling capacitors absorb transients, not sustained " +
			"loads: even an abnormally large 6.4 mF leaves a drop worth a " +
			"double-digit share of the operating range.",
	}
	for _, r := range rows {
		t.Add(units.FormatF(r.Decoupling), f3(r.ESRDrop)+" V", f1(r.DropPctOp))
	}
	return t
}

package expt

import (
	"context"
	"math"
	"testing"

	"culpeo/internal/core"
	"culpeo/internal/harness"
)

// TestWarmDriversMatchCold runs every warm-capable sweep driver twice —
// cold (plain context) and warm (WithWarm) — and requires identical
// verdicts on every row with ground truths within the search tolerance.
// This is the driver-level face of the hint-verification protocol: a warm
// sweep may take a different probe path, but it may never change what the
// figure says. The fast stepper keeps the run short; the protocol is
// stepper-agnostic.
func TestWarmDriversMatchCold(t *testing.T) {
	cold := WithFast(context.Background())
	warm := WithWarm(cold)
	core.ResetWarmStats()

	t.Run("fig6", func(t *testing.T) {
		cr, err := Fig6Ctx(cold)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := Fig6Ctx(warm)
		if err != nil {
			t.Fatal(err)
		}
		if len(cr) != len(wr) {
			t.Fatalf("row counts: %d cold, %d warm", len(cr), len(wr))
		}
		for i := range cr {
			if cr[i].Verdict != wr[i].Verdict {
				t.Errorf("%s/%s: verdict %v cold, %v warm", cr[i].Load, cr[i].Estimator, cr[i].Verdict, wr[i].Verdict)
			}
			if d := math.Abs(cr[i].GroundTruth - wr[i].GroundTruth); d > harness.Tolerance {
				t.Errorf("%s: ground truth diverges by %.2f mV", cr[i].Load, d*1e3)
			}
		}
	})

	t.Run("fig10", func(t *testing.T) {
		cr, err := Fig10(cold)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := Fig10(warm)
		if err != nil {
			t.Fatal(err)
		}
		if len(cr) != len(wr) {
			t.Fatalf("row counts: %d cold, %d warm", len(cr), len(wr))
		}
		for i := range cr {
			if cr[i].Verdict != wr[i].Verdict {
				t.Errorf("%s/%s: verdict %v cold, %v warm", cr[i].Load, cr[i].Estimator, cr[i].Verdict, wr[i].Verdict)
			}
			if d := math.Abs(cr[i].GroundTruth - wr[i].GroundTruth); d > harness.Tolerance {
				t.Errorf("%s: ground truth diverges by %.2f mV", cr[i].Load, d*1e3)
			}
		}
	})

	t.Run("reprofile", func(t *testing.T) {
		cr, err := ReprofileCtx(cold)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := ReprofileCtx(warm)
		if err != nil {
			t.Fatal(err)
		}
		if len(cr) != len(wr) {
			t.Fatalf("row counts: %d cold, %d warm", len(cr), len(wr))
		}
		for i := range cr {
			if cr[i].StaleVerdict != wr[i].StaleVerdict || cr[i].FreshVerdict != wr[i].FreshVerdict {
				t.Errorf("harvest %.3f: verdicts (%v,%v) cold, (%v,%v) warm", cr[i].Harvest,
					cr[i].StaleVerdict, cr[i].FreshVerdict, wr[i].StaleVerdict, wr[i].FreshVerdict)
			}
			if d := math.Abs(cr[i].GroundTruth - wr[i].GroundTruth); d > harness.Tolerance {
				t.Errorf("harvest %.3f: ground truth diverges by %.2f mV", cr[i].Harvest, d*1e3)
			}
		}
	})

	hits, _ := core.WarmStats()
	if hits == 0 {
		t.Error("no warm hits across the driver sweeps — the warm path never engaged")
	}
}

package expt

import (
	"context"
	"testing"
)

// TestRecoveryBench runs the recovery benchmark at toy scale to keep the
// full 100k-session `culpeo crashtest -record` path honest: the replay
// must reconstruct every session and the recorded figures must be
// positive and finite.
func TestRecoveryBench(t *testing.T) {
	res, err := RecoveryBench(context.Background(), 500, 2)
	if err != nil {
		t.Fatalf("recovery bench: %v", err)
	}
	if res.Sessions != 500 || res.ObsPerSession != 2 {
		t.Fatalf("unexpected scale: %+v", res)
	}
	if res.SnapshotBytes <= 0 {
		t.Fatalf("snapshot bytes = %d, want > 0", res.SnapshotBytes)
	}
	if res.RecoverMs <= 0 || res.SessionsPerSec <= 0 || res.AppendNsPerOp <= 0 {
		t.Fatalf("non-positive measurement: %+v", res)
	}
	t.Logf("recovered %d sessions in %.2fms (%.0f sessions/s), append %.0fns/op, snapshot %dB",
		res.Sessions, res.RecoverMs, res.SessionsPerSec, res.AppendNsPerOp, res.SnapshotBytes)
}

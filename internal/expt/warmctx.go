package expt

import "context"

// warmKey is the context key carrying the warm-start request through the
// experiment entry points (the CLIs set it from their -warm flags).
type warmKey struct{}

// WithWarm marks the context so sweep drivers warm-start consecutive
// ground-truth searches: each grid point's bisection is hinted with its
// predecessor's result ± harness.WarmGuardBand, and the hint's endpoints
// are verified by probing before being trusted (harness.GroundTruthHinted).
// Golden outputs are produced without it; warm-starting trades the cold
// search's exact probe sequence for wall-clock, staying within the 5 mV
// harness Tolerance with identical verdicts (the equivalence tests
// enforce both). Drivers that run their searches in lockstep through the
// batch lane ignore the knob — batched searches advance concurrently, so
// there is no predecessor result to hint from.
func WithWarm(ctx context.Context) context.Context {
	return context.WithValue(ctx, warmKey{}, true)
}

// WarmEnabled reports whether WithWarm was applied to the context.
func WarmEnabled(ctx context.Context) bool {
	on, _ := ctx.Value(warmKey{}).(bool)
	return on
}

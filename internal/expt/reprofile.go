package expt

import (
	"context"

	"culpeo/internal/harness"
	"culpeo/internal/harvester"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// ReprofileRow is one harvest regime of the Section V-B re-profiling
// experiment: the true V_safe at that incoming power, the stale estimate
// profiled under the old regime, and the re-profiled estimate.
type ReprofileRow struct {
	Harvest      float64 // incoming power (W)
	GroundTruth  float64 // true V_safe at this harvest
	Stale        float64 // estimate profiled at the *initial* harvest
	StaleVerdict harness.Verdict
	Fresh        float64 // estimate re-profiled at this harvest
	FreshVerdict harness.Verdict
	Triggered    bool // the change detector fired for this regime
}

// Reprofile walks a long compute task through falling harvest regimes. The
// estimate profiled under strong harvest under-reserves once the power
// drops (stale → unsafe); the Section V-B policy — re-profile when the
// change detector fires — tracks the truth.
func Reprofile() ([]ReprofileRow, error) { return ReprofileCtx(context.Background()) }

// ReprofileCtx is Reprofile with the context-carried execution knobs. The
// batch lane is a natural fit here: the four regimes share one 1.1 s task,
// so its ~137k-tick schedule is compiled once and every bisection probe of
// every regime reuses it, with the searches advancing in lockstep.
func ReprofileCtx(ctx context.Context) ([]ReprofileRow, error) {
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	h.Fast = FastEnabled(ctx)
	model := capybaraModel(cfg)
	task := load.ComputeAccel() // 1.1 s: strongly harvest-sensitive

	profileAt := func(harvest float64) (float64, error) {
		sys := h.NewSystem()
		sys.Monitor().Force(true)
		est, err := profiler.REstimate(model, sys, profiler.NewISRProbe(sys.VTerm), task, harvest)
		if err != nil {
			return 0, err
		}
		return est.VSafe, nil
	}

	regimes := []float64{10e-3, 5e-3, 2e-3, 0.5e-3}
	stale, err := profileAt(regimes[0])
	if err != nil {
		return nil, err
	}
	det := harvester.NewChangeDetector(0.5, regimes[0])

	gts := make([]float64, len(regimes))
	if BatchEnabled(ctx) {
		reqs := make([]harness.GroundTruthReq, len(regimes))
		for i, p := range regimes {
			reqs[i] = harness.GroundTruthReq{Task: task, Harvest: p}
		}
		if gts, err = h.GroundTruthBatch(ctx, reqs); err != nil {
			return nil, err
		}
	} else {
		// Warm-started: the regimes walk one task down a falling harvest
		// ladder, along which V_safe rises monotonically — each regime's
		// truth brackets the next within a guard band.
		warm := WarmEnabled(ctx)
		var hint *harness.Bracket
		for i, p := range regimes {
			if gts[i], err = h.GroundTruthHinted(ctx, task, p, hint); err != nil {
				return nil, err
			}
			if warm {
				hint = &harness.Bracket{Lo: gts[i] - harness.WarmGuardBand, Hi: gts[i] + harness.WarmGuardBand}
			}
		}
	}

	var rows []ReprofileRow
	for i, p := range regimes {
		gt := gts[i]
		fresh, err := profileAt(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ReprofileRow{
			Harvest:      p,
			GroundTruth:  gt,
			Stale:        stale,
			StaleVerdict: harness.Classify(stale, gt),
			Fresh:        fresh,
			FreshVerdict: harness.Classify(fresh, gt),
			Triggered:    det.Observe(p),
		})
	}
	return rows, nil
}

// ReprofileTable renders the rows.
func ReprofileTable(rows []ReprofileRow) *Table {
	t := &Table{
		Title:  "Section V-B: re-profiling as harvested power changes (1.1 s compute task)",
		Header: []string{"harvest mW", "truth V", "stale estimate", "fresh estimate", "detector"},
		Caption: "An estimate profiled under strong harvest goes unsafe when " +
			"the power drops; the charge-rate change detector triggers " +
			"re-profiling and the fresh estimate tracks the truth.",
	}
	for _, r := range rows {
		trig := "-"
		if r.Triggered {
			trig = "TRIGGER"
		}
		t.Add(
			f1(r.Harvest*1e3),
			f3(r.GroundTruth),
			f3(r.Stale)+" ("+r.StaleVerdict.String()+")",
			f3(r.Fresh)+" ("+r.FreshVerdict.String()+")",
			trig,
		)
	}
	return t
}

package expt

import (
	"context"
	"fmt"

	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/sweep"
	"culpeo/internal/units"
)

// TimestepRow measures simulation fidelity versus integration step: the
// observed V_min of a reference load at each dt.
type TimestepRow struct {
	DT   float64
	VMin float64
	// ErrVsFinest is the V_min deviation from the finest-step reference.
	ErrVsFinest float64
}

// TimestepSweep runs the reference 50 mA/10 ms pulse at a range of steps,
// one integration step per sweep cell.
func TimestepSweep(ctx context.Context) ([]TimestepRow, error) {
	steps := []float64{1e-6, 2e-6, 4e-6, 8e-6, 20e-6, 40e-6, 100e-6}
	rows, err := sweep.Map(ctx, steps, func(_ context.Context, _ int, dt float64) (TimestepRow, error) {
		task := load.NewPulse(50e-3, 10e-3)
		cfg := powersys.Capybara()
		cfg.DT = dt
		sys, err := powersys.New(cfg)
		if err != nil {
			return TimestepRow{}, err
		}
		if err := sys.DischargeTo(2.2); err != nil {
			return TimestepRow{}, err
		}
		sys.Monitor().Force(true)
		res := sys.Run(task, powersys.RunOptions{SkipRebound: true})
		return TimestepRow{DT: dt, VMin: res.VMin}, nil
	})
	if err != nil {
		return nil, err
	}
	ref := rows[0].VMin
	for i := range rows {
		rows[i].ErrVsFinest = rows[i].VMin - ref
	}
	return rows, nil
}

// TimestepTable renders the sweep.
func TimestepTable(rows []TimestepRow) *Table {
	t := &Table{
		Title:  "Ablation: integration timestep vs V_min fidelity (50 mA / 10 ms pulse)",
		Header: []string{"dt", "V_min", "error vs 1 µs"},
		Caption: "Millisecond-scale loads tolerate tens-of-µs steps; the " +
			"default 8 µs matches the paper's 125 kHz profiling rate.",
	}
	for _, r := range rows {
		t.Add(units.FormatS(r.DT), f3(r.VMin), fmt.Sprintf("%+.4f", r.ErrVsFinest))
	}
	return t
}

// ADCBitsRow measures Culpeo-R conservativeness versus ADC resolution.
type ADCBitsRow struct {
	Bits     int
	Estimate float64
	ErrorPct float64 // vs ground truth, % of operating range
	Verdict  harness.Verdict
}

// ADCBitsSweep runs the µArch probe at 6–14 bits on the reference pulse,
// one resolution per sweep cell.
func ADCBitsSweep(ctx context.Context) ([]ADCBitsRow, error) {
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	model := capybaraModel(cfg)
	task := load.NewPulse(25e-3, 10e-3)
	gt, err := h.GroundTruthCtx(ctx, task, 0)
	if err != nil {
		return nil, err
	}
	return sweep.Map(ctx, []int{6, 8, 10, 12, 14}, func(_ context.Context, _ int, bits int) (ADCBitsRow, error) {
		sys := h.NewSystem()
		sys.Monitor().Force(true)
		probe := profiler.NewUArchProbe(sys.VTerm)
		probe.Block.ADC.Bits = bits
		est, err := profiler.REstimate(model, sys, probe, task, 0)
		if err != nil {
			return ADCBitsRow{}, err
		}
		return ADCBitsRow{
			Bits:     bits,
			Estimate: est.VSafe,
			ErrorPct: h.ErrorPercent(est.VSafe, gt),
			Verdict:  harness.Classify(est.VSafe, gt),
		}, nil
	})
}

// ADCBitsTable renders the sweep.
func ADCBitsTable(rows []ADCBitsRow) *Table {
	t := &Table{
		Title:  "Ablation: ADC resolution vs Culpeo-R estimate (25 mA / 10 ms pulse)",
		Header: []string{"bits", "estimate V", "error %", "verdict"},
		Caption: "Lower resolution quantizes V_min downward, making estimates " +
			"more conservative — the µArch block's 8 bits trade a little " +
			"headroom for a 1000× ADC power reduction.",
	}
	for _, r := range rows {
		t.Add(f0(float64(r.Bits)), f3(r.Estimate), f1(r.ErrorPct), r.Verdict.String())
	}
	return t
}

// ISRPeriodRow measures the ISR sampling period's effect on observing the
// minimum of a fast pulse (the Figure 10 1 ms anomaly).
type ISRPeriodRow struct {
	Period   float64
	VDelta   float64 // observed rebound
	Estimate float64
	Verdict  harness.Verdict
}

// ISRPeriodSweep profiles a 50 mA/1 ms pulse at several ISR periods, one
// period per sweep cell.
func ISRPeriodSweep(ctx context.Context) ([]ISRPeriodRow, error) {
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	model := capybaraModel(cfg)
	task := load.NewPulse(50e-3, 1e-3)
	gt, err := h.GroundTruthCtx(ctx, task, 0)
	if err != nil {
		return nil, err
	}
	periods := []float64{0.1e-3, 0.25e-3, 0.5e-3, 1e-3, 2e-3, 5e-3}
	return sweep.Map(ctx, periods, func(_ context.Context, _ int, period float64) (ISRPeriodRow, error) {
		sys := h.NewSystem()
		sys.Monitor().Force(true)
		probe := profiler.NewISRProbe(sys.VTerm)
		probe.Period = period
		obs, res := profiler.ProfileRun(sys, probe, task, 0)
		if !res.Completed {
			return ISRPeriodRow{}, fmt.Errorf("expt: ISR sweep run failed at period %g", period)
		}
		est, err := core.VSafeR(model, obs)
		if err != nil {
			return ISRPeriodRow{}, err
		}
		return ISRPeriodRow{
			Period:   period,
			VDelta:   obs.VDelta(),
			Estimate: est.VSafe,
			Verdict:  harness.Classify(est.VSafe, gt),
		}, nil
	})
}

// ISRPeriodTable renders the sweep.
func ISRPeriodTable(rows []ISRPeriodRow) *Table {
	t := &Table{
		Title:  "Ablation: ISR sampling period vs fast-pulse profiling (50 mA / 1 ms)",
		Header: []string{"period", "observed V_delta", "estimate V", "verdict"},
		Caption: "Periods at or above the pulse width miss the minimum " +
			"entirely, producing aggressive estimates — the paper's Culpeo-R-ISR " +
			"anomaly at 50 mA/1 ms.",
	}
	for _, r := range rows {
		t.Add(units.FormatS(r.Period), f3(r.VDelta), f3(r.Estimate), r.Verdict.String())
	}
	return t
}

// ESRLossRow compares Culpeo-PG with and without ESR-dissipation
// accounting (the paper's Algorithm 1 omits the I²R term; see
// core.PowerModel.OmitESRLoss).
type ESRLossRow struct {
	Load          string
	GroundTruth   float64
	WithLoss      float64
	WithLossPct   float64
	PaperExact    float64 // Algorithm 1 as printed
	PaperExactPct float64
	PaperVerdict  harness.Verdict
}

// ESRLossSweep evaluates the two PG variants on energy-heavy loads, where
// the paper reports its PG failing. One load per sweep cell, each owning
// its ground-truth search and both estimates.
func ESRLossSweep(ctx context.Context) ([]ESRLossRow, error) {
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	model := capybaraModel(cfg)
	paper := model
	paper.OmitESRLoss = true

	tasks := []load.Profile{
		load.NewPulse(5e-3, 100e-3),
		load.NewPulse(10e-3, 100e-3),
		load.NewPulse(50e-3, 10e-3),
		load.NewUniform(50e-3, 100e-3),
	}
	return sweep.Map(ctx, tasks, func(cctx context.Context, _ int, task load.Profile) (ESRLossRow, error) {
		gt, err := h.GroundTruthCtx(cctx, task, 0)
		if err != nil {
			return ESRLossRow{}, err
		}
		with, err := profiler.PG{Model: model}.Estimate(task)
		if err != nil {
			return ESRLossRow{}, err
		}
		without, err := profiler.PG{Model: paper}.Estimate(task)
		if err != nil {
			return ESRLossRow{}, err
		}
		return ESRLossRow{
			Load:          task.Name(),
			GroundTruth:   gt,
			WithLoss:      with.VSafe,
			WithLossPct:   h.ErrorPercent(with.VSafe, gt),
			PaperExact:    without.VSafe,
			PaperExactPct: h.ErrorPercent(without.VSafe, gt),
			PaperVerdict:  harness.Classify(without.VSafe, gt),
		}, nil
	})
}

// ESRLossTable renders the comparison.
func ESRLossTable(rows []ESRLossRow) *Table {
	t := &Table{
		Title:  "Ablation: Algorithm 1 with vs without ESR-dissipation accounting",
		Header: []string{"load", "truth V", "with I²R (err %)", "paper-exact (err %)", "paper-exact verdict"},
		Caption: "The paper reports Culpeo-PG failing on high-energy loads; " +
			"most of that error is the I²R heat the printed Algorithm 1 never " +
			"books. Adding the term keeps PG safe everywhere.",
	}
	for _, r := range rows {
		t.Add(r.Load, f3(r.GroundTruth),
			f3(r.WithLoss)+" ("+f1(r.WithLossPct)+")",
			f3(r.PaperExact)+" ("+f1(r.PaperExactPct)+")",
			r.PaperVerdict.String())
	}
	return t
}

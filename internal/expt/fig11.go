package expt

import (
	"fmt"

	"culpeo/internal/baseline"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// Fig11Row is one arrow of Figure 11: an estimator's V_safe for a real
// peripheral (arrow top) and the minimum voltage observed when actually
// started there (arrow bottom). Safe and performant means the bottom lands
// just above V_off.
type Fig11Row struct {
	Peripheral string
	Estimator  string
	VSafe      float64
	VMin       float64
	Completed  bool
}

// Fig11Estimators lists the figure's estimators in display order.
var Fig11Estimators = []string{"Energy-V", "Catnap", "Culpeo-PG", "Culpeo-R"}

// Fig11Peripherals returns the figure's three real-peripheral loads.
func Fig11Peripherals() []load.Profile {
	return []load.Profile{load.Gesture(), load.BLERadio(), load.ComputeAccel()}
}

// Fig11 computes each estimator's V_safe for each peripheral and validates
// it by running the peripheral from that voltage.
func Fig11() ([]Fig11Row, error) {
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	model := capybaraModel(cfg)
	pg := profiler.PG{Model: model}

	estimate := func(name string, task load.Profile) (float64, error) {
		switch name {
		case "Energy-V":
			return baseline.Estimate(baseline.EnergyV, h, task), nil
		case "Catnap":
			return baseline.Estimate(baseline.CatnapMeasured, h, task), nil
		case "Culpeo-PG":
			est, err := pg.Estimate(task)
			return est.VSafe, err
		case "Culpeo-R":
			sys := h.NewSystem()
			sys.Monitor().Force(true)
			est, err := profiler.REstimate(model, sys, profiler.NewISRProbe(sys.VTerm), task, 0)
			return est.VSafe, err
		}
		return 0, fmt.Errorf("expt: unknown estimator %q", name)
	}

	var rows []Fig11Row
	for _, task := range Fig11Peripherals() {
		for _, name := range Fig11Estimators {
			v, err := estimate(name, task)
			if err != nil {
				return nil, fmt.Errorf("expt: fig11 %s/%s: %w", task.Name(), name, err)
			}
			if v < cfg.VOff {
				v = cfg.VOff // can't start below the power-off threshold
			}
			if v > cfg.VHigh {
				v = cfg.VHigh
			}
			res := h.RunAt(v, task, powersys.RunOptions{SkipRebound: true})
			rows = append(rows, Fig11Row{
				Peripheral: task.Name(),
				Estimator:  name,
				VSafe:      v,
				VMin:       res.VMin,
				Completed:  res.Completed && res.VMin >= cfg.VOff,
			})
		}
	}
	return rows, nil
}

// Fig11Table renders the rows.
func Fig11Table(rows []Fig11Row) *Table {
	t := &Table{
		Title:  "Figure 11: real-peripheral V_safe (arrow top) and observed V_min (arrow bottom)",
		Header: []string{"peripheral", "estimator", "V_safe", "V_min", "outcome"},
		Caption: "Energy-V and CatNap start the peripherals so low the device " +
			"powers off (V_min below 1.6 V); both Culpeo variants complete with " +
			"V_min just above V_off.",
	}
	for _, r := range rows {
		out := "POWER FAILURE"
		if r.Completed {
			out = "completed"
		}
		t.Add(r.Peripheral, r.Estimator, f3(r.VSafe), f3(r.VMin), out)
	}
	return t
}

package expt

import (
	"context"
	"fmt"

	"culpeo/internal/baseline"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/sweep"
)

// Fig11Row is one arrow of Figure 11: an estimator's V_safe for a real
// peripheral (arrow top) and the minimum voltage observed when actually
// started there (arrow bottom). Safe and performant means the bottom lands
// just above V_off.
type Fig11Row struct {
	Peripheral string
	Estimator  string
	VSafe      float64
	VMin       float64
	Completed  bool
}

// Fig11Estimators lists the figure's estimators in display order.
var Fig11Estimators = []string{"Energy-V", "Catnap", "Culpeo-PG", "Culpeo-R"}

// Fig11Peripherals returns the figure's three real-peripheral loads.
func Fig11Peripherals() []load.Profile {
	return []load.Profile{load.Gesture(), load.BLERadio(), load.ComputeAccel()}
}

// fig11Estimate runs one estimator on one peripheral, on private systems.
func fig11Estimate(h *harness.Harness, name string, task load.Profile) (float64, error) {
	model := capybaraModel(h.Config())
	switch name {
	case "Energy-V":
		return baseline.Estimate(baseline.EnergyV, h, task), nil
	case "Catnap":
		return baseline.Estimate(baseline.CatnapMeasured, h, task), nil
	case "Culpeo-PG":
		est, err := profiler.PG{Model: model}.Estimate(task)
		return est.VSafe, err
	case "Culpeo-R":
		sys := h.NewSystem()
		sys.Monitor().Force(true)
		est, err := profiler.REstimate(model, sys, profiler.NewISRProbe(sys.VTerm), task, 0)
		return est.VSafe, err
	}
	return 0, fmt.Errorf("expt: unknown estimator %q", name)
}

// Fig11 computes each estimator's V_safe for each peripheral and validates
// it by running the peripheral from that voltage. The peripheral × estimator
// grid runs on the sweep pool — every cell is an isolated estimate-then-
// validate simulation.
func Fig11(ctx context.Context) ([]Fig11Row, error) {
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	h.Fast = FastEnabled(ctx)
	peripherals := Fig11Peripherals()

	g := sweep.NewGrid(len(peripherals), len(Fig11Estimators))
	rows, err := sweep.Run(ctx, g, func(_ context.Context, c sweep.Cell) (Fig11Row, error) {
		task := peripherals[c.Coords[0]]
		name := Fig11Estimators[c.Coords[1]]
		v, err := fig11Estimate(h, name, task)
		if err != nil {
			return Fig11Row{}, fmt.Errorf("expt: fig11 %s/%s: %w", task.Name(), name, err)
		}
		if v < cfg.VOff {
			v = cfg.VOff // can't start below the power-off threshold
		}
		if v > cfg.VHigh {
			v = cfg.VHigh
		}
		res := h.RunAt(v, task, powersys.RunOptions{SkipRebound: true})
		return Fig11Row{
			Peripheral: task.Name(),
			Estimator:  name,
			VSafe:      v,
			VMin:       res.VMin,
			Completed:  res.Completed && res.VMin >= cfg.VOff,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig11Table renders the rows.
func Fig11Table(rows []Fig11Row) *Table {
	t := &Table{
		Title:  "Figure 11: real-peripheral V_safe (arrow top) and observed V_min (arrow bottom)",
		Header: []string{"peripheral", "estimator", "V_safe", "V_min", "outcome"},
		Caption: "Energy-V and CatNap start the peripherals so low the device " +
			"powers off (V_min below 1.6 V); both Culpeo variants complete with " +
			"V_min just above V_off.",
	}
	for _, r := range rows {
		out := "POWER FAILURE"
		if r.Completed {
			out = "completed"
		}
		t.Add(r.Peripheral, r.Estimator, f3(r.VSafe), f3(r.VMin), out)
	}
	return t
}

package expt

import (
	"culpeo/internal/load"
	"culpeo/internal/units"
)

// Tbl3Row describes one load of Table III.
type Tbl3Row struct {
	Name     string
	Kind     string
	Peak     float64
	Duration float64
	Energy   float64 // at the 2.55 V rail
	Widest   float64 // widest pulse (drives ESR selection)
}

// Tbl3 catalogues the evaluation's loads: the synthetic sweeps plus the
// three peripheral traces.
func Tbl3() []Tbl3Row {
	var rows []Tbl3Row
	add := func(kind string, ps ...load.Profile) {
		for _, p := range ps {
			rows = append(rows, Tbl3Row{
				Name:     p.Name(),
				Kind:     kind,
				Peak:     load.PeakCurrent(p, 125e3),
				Duration: p.Duration(),
				Energy:   load.Energy(p, 2.55, 125e3),
				Widest:   load.WidestPulse(p, 125e3),
			})
		}
	}
	add("uniform", load.TableIIIUniform()...)
	add("pulse", load.TableIIIPulse()...)
	add("peripheral", load.Gesture(), load.BLERadio(), load.ComputeAccel())
	return rows
}

// Tbl3Table renders the rows.
func Tbl3Table(rows []Tbl3Row) *Table {
	t := &Table{
		Title:  "Table III: evaluation loads",
		Header: []string{"load", "kind", "peak", "duration", "energy @2.55V", "widest pulse"},
	}
	for _, r := range rows {
		t.Add(r.Name, r.Kind,
			units.FormatA(r.Peak),
			units.FormatS(r.Duration),
			units.Format(r.Energy, "J"),
			units.FormatS(r.Widest),
		)
	}
	return t
}

package expt

import (
	"context"

	"culpeo/internal/load"
	"culpeo/internal/sweep"
	"culpeo/internal/units"
)

// Tbl3Row describes one load of Table III.
type Tbl3Row struct {
	Name     string
	Kind     string
	Peak     float64
	Duration float64
	Energy   float64 // at the 2.55 V rail
	Widest   float64 // widest pulse (drives ESR selection)
}

// Tbl3 catalogues the evaluation's loads: the synthetic sweeps plus the
// three peripheral traces. Each load's characterization (peak, energy,
// widest pulse — all 125 kHz trace scans) is one sweep cell.
func Tbl3(ctx context.Context) ([]Tbl3Row, error) {
	type cell struct {
		p    load.Profile
		kind string
	}
	var cells []cell
	add := func(kind string, ps ...load.Profile) {
		for _, p := range ps {
			cells = append(cells, cell{p, kind})
		}
	}
	add("uniform", load.TableIIIUniform()...)
	add("pulse", load.TableIIIPulse()...)
	add("peripheral", load.Gesture(), load.BLERadio(), load.ComputeAccel())

	return sweep.Map(ctx, cells, func(_ context.Context, _ int, c cell) (Tbl3Row, error) {
		return Tbl3Row{
			Name:     c.p.Name(),
			Kind:     c.kind,
			Peak:     load.PeakCurrent(c.p, 125e3),
			Duration: c.p.Duration(),
			Energy:   load.Energy(c.p, 2.55, 125e3),
			Widest:   load.WidestPulse(c.p, 125e3),
		}, nil
	})
}

// Tbl3Table renders the rows.
func Tbl3Table(rows []Tbl3Row) *Table {
	t := &Table{
		Title:  "Table III: evaluation loads",
		Header: []string{"load", "kind", "peak", "duration", "energy @2.55V", "widest pulse"},
	}
	for _, r := range rows {
		t.Add(r.Name, r.Kind,
			units.FormatA(r.Peak),
			units.FormatS(r.Duration),
			units.Format(r.Energy, "J"),
			units.FormatS(r.Widest),
		)
	}
	return t
}

package expt

import (
	"culpeo/internal/capacitor"
	"culpeo/internal/charact"
	"culpeo/internal/powersys"
	"culpeo/internal/units"
)

// CharactRow is one pulse width of the power-system impedance sweep.
type CharactRow struct {
	Width    float64 // probe pulse width (s)
	Hz       float64 // equivalent frequency
	FlatESR  float64 // measured on the single-branch Capybara bank
	SuperESR float64 // measured on the two-branch supercapacitor model
}

// Charact runs the Section IV-B characterization: the measured
// ESR-versus-frequency curve for a flat (single-branch) bank and for a
// two-branch supercapacitor whose effective ESR falls with frequency.
func Charact() ([]CharactRow, error) {
	flatCfg := powersys.Capybara()

	branches := capacitor.SupercapBranches("sc", 45e-3, 6.0, 1.0, 0.05, 2.56)
	net, err := capacitor.NewNetwork(branches...)
	if err != nil {
		return nil, err
	}
	superCfg := powersys.Capybara()
	superCfg.Storage = net

	var rows []CharactRow
	for _, w := range charact.DefaultPulseWidths() {
		flat, err := charact.MeasureESRAt(flatCfg, w, 10e-3)
		if err != nil {
			return nil, err
		}
		super, err := charact.MeasureESRAt(superCfg, w, 10e-3)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CharactRow{Width: w, Hz: 1 / (2 * w), FlatESR: flat, SuperESR: super})
	}
	return rows, nil
}

// CharactTable renders the sweep.
func CharactTable(rows []CharactRow) *Table {
	t := &Table{
		Title:  "Section IV-B: measured ESR vs frequency (impedance sweep)",
		Header: []string{"pulse width", "frequency", "flat bank ESR", "supercap model ESR"},
		Caption: "Datasheet ESR is a single number; measurement shows the " +
			"supercapacitor presents several-fold higher ESR to sustained loads " +
			"than to fast pulses — which is why Culpeo-PG selects the ESR by " +
			"the load's widest pulse.",
	}
	for _, r := range rows {
		t.Add(units.FormatS(r.Width), units.Format(r.Hz, "Hz"),
			units.FormatOhm(r.FlatESR), units.FormatOhm(r.SuperESR))
	}
	return t
}

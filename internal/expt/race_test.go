package expt

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/serve"
	"culpeo/internal/sweep"
)

// TestRaceChaos runs every sweep-backed driver concurrently with an
// oversubscribed worker pool. It proves the cell-isolation contract (each
// cell owns its System, RNG and policies; shared inputs are read-only)
// under `go test -race ./internal/expt`: any hidden shared mutable state
// between cells or between drivers trips the detector.
func TestRaceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is seconds-long")
	}
	// More workers than cores (and than most grids) to force interleaving.
	ctx := sweep.WithWorkers(context.Background(), 8)

	var wg sync.WaitGroup
	run := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}()
	}

	run("fig3", func() error { _, err := Fig3(ctx); return err })
	run("fig5", func() error { _, err := Fig5(ctx); return err })
	run("tbl3", func() error { _, err := Tbl3(ctx); return err })
	run("fig10", func() error { _, err := Fig10(ctx); return err })
	run("fig11", func() error { _, err := Fig11(ctx); return err })
	run("fig12", func() error { _, err := Fig12(ctx, Fig12Opts{Horizon: 10, Trials: 1}); return err })
	run("fig13", func() error { _, err := Fig13(ctx, Fig12Opts{Horizon: 10, Trials: 1}); return err })
	run("timestep", func() error { _, err := TimestepSweep(ctx); return err })
	run("adcbits", func() error { _, err := ADCBitsSweep(ctx); return err })
	run("isrperiod", func() error { _, err := ISRPeriodSweep(ctx); return err })
	run("esrloss", func() error { _, err := ESRLossSweep(ctx); return err })
	run("intermittent", func() error { _, err := Intermittent(ctx, 5); return err })
	run("decompose", func() error { _, err := Decompose(ctx, 10); return err })
	// The soak shares the pool with everything above while its cells own
	// seeded fault injectors — the injector RNG streams must be cell-private.
	run("soak", func() error { _, err := Soak(ctx, SoakOpts{Horizon: 5}); return err })
	// Fast-path fig10 alongside the exact one above: both route every
	// Culpeo-PG estimate through the shared default V_safe cache, so the
	// same LRU takes concurrent hit/miss traffic from two driver sweeps.
	run("fig10-fast", func() error { _, err := Fig10(WithFast(ctx)); return err })
	// Batch-lane fig10 as a third concurrent copy: its ground truths come
	// from lockstep SoA batches while the two fig10s above bisect load by
	// load, all three feeding the same estimator cache.
	run("fig10-batch", func() error { _, err := Fig10(WithBatch(ctx)); return err })
	// And a dedicated hammer: workers=NumCPU sweeps over the Table III
	// catalogue against one under-sized cache, forcing concurrent misses,
	// hits and evictions on every round.
	run("vsafe-cache", func() error {
		ctxN := sweep.WithWorkers(context.Background(), runtime.NumCPU())
		pg := profiler.PG{
			Model: capybaraModel(powersys.Capybara()),
			Cache: core.NewVSafeCache(4),
		}
		tasks := append(load.TableIIIUniform(), load.TableIIIPulse()...)
		for round := 0; round < 3; round++ {
			if _, err := sweep.Map(ctxN, tasks, func(_ context.Context, _ int, task load.Profile) (float64, error) {
				est, err := pg.Estimate(task)
				return est.VSafe, err
			}); err != nil {
				return err
			}
		}
		st := pg.Cache.Stats()
		if st.Hits+st.Misses == 0 {
			t.Error("vsafe-cache: no traffic reached the cache")
		}
		return nil
	})
	// Concurrent batch runners against one shared under-sized cache: every
	// odd cell drives the PG estimator through the LRU while every even
	// cell runs a full lockstep ground-truth batch on a shared harness —
	// the SoA stepper, the search bookkeeping and the cache all take
	// concurrent traffic from the same pool.
	run("batch-cache", func() error {
		ctxN := sweep.WithWorkers(context.Background(), runtime.NumCPU())
		pg := profiler.PG{
			Model: capybaraModel(powersys.Capybara()),
			Cache: core.NewVSafeCache(4),
		}
		h, err := harness.New(powersys.Capybara())
		if err != nil {
			return err
		}
		h.Fast = true
		tasks := load.TableIIIPulse()[:6]
		reqs := make([]harness.GroundTruthReq, len(tasks))
		for i, task := range tasks {
			reqs[i] = harness.GroundTruthReq{Task: task}
		}
		cells := make([]int, 2*runtime.NumCPU())
		if _, err := sweep.Map(ctxN, cells, func(cctx context.Context, i int, _ int) (float64, error) {
			if i%2 == 0 {
				gts, err := h.GroundTruthBatch(cctx, reqs)
				if err != nil {
					return 0, err
				}
				return gts[0], nil
			}
			est, err := pg.Estimate(tasks[i%len(tasks)])
			return est.VSafe, err
		}); err != nil {
			return err
		}
		if st := pg.Cache.Stats(); st.Hits+st.Misses == 0 {
			t.Error("batch-cache: no traffic reached the cache")
		}
		return nil
	})
	// The resilience stack under the same load: a reduced chaos soak —
	// two serve instances behind netchaos proxies, one client.Pool doing
	// retry/failover/breaker work — runs while the sweeps above saturate
	// the machine. Only the gates are asserted here (success, parity, no
	// panics); the byte-exact golden determinism is TestChaosSoak's job.
	run("netchaos", func() error {
		// Lax: on a saturated 1-CPU -race build a healthy request can take
		// seconds, so the soak's production-shaped 400 ms attempt timeout
		// would misread starvation as backend death.
		rep, err := Chaos(context.Background(), ChaosOpts{Reduced: true, Lax: true})
		if err != nil {
			return err
		}
		return rep.Gate()
	})
	// The serving layer under the same chaos: an in-process HTTP server with
	// an under-sized shared cache takes NumCPU closed-loop clients mixing
	// single estimates, batches and canceled-mid-flight requests — admission
	// control, middleware counters and the LRU all take concurrent traffic
	// while the drivers above saturate the sweep pool.
	run("serve-chaos", func() error {
		srv := serve.New(serve.Config{
			Cache:       core.NewVSafeCache(4),
			MaxInFlight: 2,
			QueueDepth:  2 * runtime.NumCPU(),
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()

		single := func(i float64) string {
			return fmt.Sprintf(`{"load":{"shape":"uniform","i":%g,"t":0.01}}`, i)
		}
		var cwg sync.WaitGroup
		errCh := make(chan error, runtime.NumCPU())
		for c := 0; c < runtime.NumCPU(); c++ {
			c := c
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				for round := 0; round < 6; round++ {
					// Rotate currents so the 4-entry cache churns.
					body := single(10e-3 + float64((c+round)%8)*5e-3)
					switch round % 3 {
					case 0: // single estimate
						resp, err := client.Post(ts.URL+"/v1/vsafe", "application/json", strings.NewReader(body))
						if err != nil {
							errCh <- err
							return
						}
						resp.Body.Close()
					case 1: // mixed batch: estimates (one malformed) + lockstep simulations
						batch := fmt.Sprintf(`{"requests":[%s,{"load":{"shape":"nope"}},%s],`+
							`"simulations":[%s,{"load":{"shape":"pulse","i":0.03,"t":0.002},"fast":true}]}`,
							body, single(20e-3), body)
						resp, err := client.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
						if err != nil {
							errCh <- err
							return
						}
						resp.Body.Close()
					case 2: // cancel mid-flight: the context threads into the run
						cctx, cancel := context.WithTimeout(context.Background(), time.Duration(c%3)*100*time.Microsecond)
						req, err := http.NewRequestWithContext(cctx, http.MethodPost,
							ts.URL+"/v1/simulate", strings.NewReader(`{"load":{"shape":"uniform","i":0.001,"t":5}}`))
						if err != nil {
							cancel()
							errCh <- err
							return
						}
						req.Header.Set("Content-Type", "application/json")
						if resp, err := client.Do(req); err == nil {
							resp.Body.Close() // cancellation errors are the point, not failures
						}
						cancel()
					}
				}
			}()
		}
		cwg.Wait()
		close(errCh)
		for err := range errCh {
			return err
		}
		m := srv.Metrics()
		if m.Endpoints["vsafe"].Requests == 0 || m.Endpoints["batch"].Requests == 0 {
			t.Error("serve-chaos: endpoints saw no traffic")
		}
		return nil
	})
	wg.Wait()
}

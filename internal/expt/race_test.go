package expt

import (
	"context"
	"sync"
	"testing"

	"culpeo/internal/sweep"
)

// TestRaceChaos runs every sweep-backed driver concurrently with an
// oversubscribed worker pool. It proves the cell-isolation contract (each
// cell owns its System, RNG and policies; shared inputs are read-only)
// under `go test -race ./internal/expt`: any hidden shared mutable state
// between cells or between drivers trips the detector.
func TestRaceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is seconds-long")
	}
	// More workers than cores (and than most grids) to force interleaving.
	ctx := sweep.WithWorkers(context.Background(), 8)

	var wg sync.WaitGroup
	run := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}()
	}

	run("fig3", func() error { _, err := Fig3(ctx); return err })
	run("fig5", func() error { _, err := Fig5(ctx); return err })
	run("tbl3", func() error { _, err := Tbl3(ctx); return err })
	run("fig10", func() error { _, err := Fig10(ctx); return err })
	run("fig11", func() error { _, err := Fig11(ctx); return err })
	run("fig12", func() error { _, err := Fig12(ctx, Fig12Opts{Horizon: 10, Trials: 1}); return err })
	run("fig13", func() error { _, err := Fig13(ctx, Fig12Opts{Horizon: 10, Trials: 1}); return err })
	run("timestep", func() error { _, err := TimestepSweep(ctx); return err })
	run("adcbits", func() error { _, err := ADCBitsSweep(ctx); return err })
	run("isrperiod", func() error { _, err := ISRPeriodSweep(ctx); return err })
	run("esrloss", func() error { _, err := ESRLossSweep(ctx); return err })
	run("intermittent", func() error { _, err := Intermittent(ctx, 5); return err })
	run("decompose", func() error { _, err := Decompose(ctx, 10); return err })
	// The soak shares the pool with everything above while its cells own
	// seeded fault injectors — the injector RNG streams must be cell-private.
	run("soak", func() error { _, err := Soak(ctx, SoakOpts{Horizon: 5}); return err })
	wg.Wait()
}

package expt

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/sweep"
)

// TestRaceChaos runs every sweep-backed driver concurrently with an
// oversubscribed worker pool. It proves the cell-isolation contract (each
// cell owns its System, RNG and policies; shared inputs are read-only)
// under `go test -race ./internal/expt`: any hidden shared mutable state
// between cells or between drivers trips the detector.
func TestRaceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is seconds-long")
	}
	// More workers than cores (and than most grids) to force interleaving.
	ctx := sweep.WithWorkers(context.Background(), 8)

	var wg sync.WaitGroup
	run := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}()
	}

	run("fig3", func() error { _, err := Fig3(ctx); return err })
	run("fig5", func() error { _, err := Fig5(ctx); return err })
	run("tbl3", func() error { _, err := Tbl3(ctx); return err })
	run("fig10", func() error { _, err := Fig10(ctx); return err })
	run("fig11", func() error { _, err := Fig11(ctx); return err })
	run("fig12", func() error { _, err := Fig12(ctx, Fig12Opts{Horizon: 10, Trials: 1}); return err })
	run("fig13", func() error { _, err := Fig13(ctx, Fig12Opts{Horizon: 10, Trials: 1}); return err })
	run("timestep", func() error { _, err := TimestepSweep(ctx); return err })
	run("adcbits", func() error { _, err := ADCBitsSweep(ctx); return err })
	run("isrperiod", func() error { _, err := ISRPeriodSweep(ctx); return err })
	run("esrloss", func() error { _, err := ESRLossSweep(ctx); return err })
	run("intermittent", func() error { _, err := Intermittent(ctx, 5); return err })
	run("decompose", func() error { _, err := Decompose(ctx, 10); return err })
	// The soak shares the pool with everything above while its cells own
	// seeded fault injectors — the injector RNG streams must be cell-private.
	run("soak", func() error { _, err := Soak(ctx, SoakOpts{Horizon: 5}); return err })
	// Fast-path fig10 alongside the exact one above: both route every
	// Culpeo-PG estimate through the shared default V_safe cache, so the
	// same LRU takes concurrent hit/miss traffic from two driver sweeps.
	run("fig10-fast", func() error { _, err := Fig10(WithFast(ctx)); return err })
	// And a dedicated hammer: workers=NumCPU sweeps over the Table III
	// catalogue against one under-sized cache, forcing concurrent misses,
	// hits and evictions on every round.
	run("vsafe-cache", func() error {
		ctxN := sweep.WithWorkers(context.Background(), runtime.NumCPU())
		pg := profiler.PG{
			Model: capybaraModel(powersys.Capybara()),
			Cache: core.NewVSafeCache(4),
		}
		tasks := append(load.TableIIIUniform(), load.TableIIIPulse()...)
		for round := 0; round < 3; round++ {
			if _, err := sweep.Map(ctxN, tasks, func(_ context.Context, _ int, task load.Profile) (float64, error) {
				est, err := pg.Estimate(task)
				return est.VSafe, err
			}); err != nil {
				return err
			}
		}
		st := pg.Cache.Stats()
		if st.Hits+st.Misses == 0 {
			t.Error("vsafe-cache: no traffic reached the cache")
		}
		return nil
	})
	wg.Wait()
}

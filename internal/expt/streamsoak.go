// The streaming soak: the acceptance gate for the sessionized tier —
// internal/session, the /v1/stream endpoints and client.Stream together.
// It boots two real culpeod backends behind two fault-injecting netchaos
// proxies (links flap, requests get 503 bursts, connections reset
// mid-response), drives N full device lifecycles through session.LoadGen
// — open, stream, detach, resume, close — and gates on the tier's
// promises all at once:
//
//  1. zero failed sessions: every device completes its lifecycle and
//     receives exactly one terminal event, reconnects and cross-backend
//     rebuilds included;
//  2. bit-exact parity: every streamed estimate equals the from-scratch
//     session.FoldWindow over the client's replay tail, the margin equals
//     the client-side mirror fold, and a sampled subset also matches
//     per-observation /v1/vsafe-r responses from a chaos-free backend;
//  3. bounded memory: with all N sessions resident but detached, heap
//     per session stays under a fixed ceiling;
//  4. neither server panics.
//
// Unlike the chaos soak this report is not golden-locked: streams are
// long-lived and the kernel schedules which connection carries which
// request, so counters like reconnects are load-dependent. The gates are
// invariants, not transcripts.
package expt

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"culpeo/internal/client"
	"culpeo/internal/core"
	"culpeo/internal/netchaos"
	"culpeo/internal/powersys"
	"culpeo/internal/serve"
	"culpeo/internal/session"
)

// The stream schedules, in connection-index space. Keepalives stay ON for
// this soak (streams are long-lived; one cut connection can kill an SSE
// downlink and several pipelined uploads at once), so a single fault
// fans out into reconnects, resumes and cross-backend rebuilds. Both
// backends flap; blackholes are omitted because every fault here should
// fail fast — slow-death behavior is the chaos soak's subject.
const (
	streamScheduleB0 = "latency:d=1ms,from=0,count=1,every=13;" +
		"h503:retryafter=1,from=7,count=1,every=19;" +
		"reset:after=512,from=13,count=1,every=29;" +
		"down:from=23,count=2,every=37"
	streamScheduleB1 = "h503:retryafter=1,from=9,count=1,every=23;" +
		"slow:chunk=64,delay=1ms,from=5,count=1,every=41;" +
		"down:from=15,count=1,every=31"
)

// StreamOpts configures a streaming soak run.
type StreamOpts struct {
	// Reduced selects the `make stream` -race configuration: 2,000
	// sessions instead of the 100,000-session full soak.
	Reduced bool
	// Sessions overrides the device count (<=0: mode default).
	Sessions int
	// Workers bounds concurrently active devices (<=0: 64).
	Workers int
	// Obs is observations per session (<=0: 16).
	Obs int
	// Ring is the session window size (<=0: 16).
	Ring int
	// HeapCeilingBytes is the bounded-memory gate: peak heap growth per
	// resident session must stay under it (<=0: 64 KiB). The ceiling
	// covers both sides — the server's ring session and the client's
	// stream mirror live in one process here.
	HeapCeilingBytes float64
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// StreamReport is the outcome of one streaming soak. Gate returns nil iff
// every property held; Render writes the human-readable report.
type StreamReport struct {
	Mode             string
	Ring             int
	Workers          int
	HeapCeilingBytes float64
	Result           session.LoadGenResult
	Backends         [2]session.Stats // session-table counters per backend
	ServerPanics     [2]uint64
}

// Gate returns nil when the soak satisfied every acceptance property.
func (r *StreamReport) Gate() error {
	res := &r.Result
	if res.FailedN > 0 {
		first := "(no sample)"
		if len(res.Failed) > 0 {
			first = res.Failed[0]
		}
		return fmt.Errorf("stream: %d/%d sessions failed (first: %s)", res.FailedN, res.Sessions, first)
	}
	if res.Completed != res.Sessions {
		return fmt.Errorf("stream: %d/%d sessions completed the full lifecycle", res.Completed, res.Sessions)
	}
	if res.Terminals != res.Sessions {
		return fmt.Errorf("stream: %d terminals for %d sessions (want exactly one each)", res.Terminals, res.Sessions)
	}
	if res.ParityChecked == 0 || res.MarginChecked == 0 || res.HTTPParityChecked == 0 {
		return fmt.Errorf("stream: vacuous parity pass (estimate=%d margin=%d http=%d checks)",
			res.ParityChecked, res.MarginChecked, res.HTTPParityChecked)
	}
	if res.ParityMismatches != 0 || res.MarginMismatches != 0 || res.HTTPParityMismatches != 0 {
		return fmt.Errorf("stream: parity mismatches: estimate=%d margin=%d http=%d",
			res.ParityMismatches, res.MarginMismatches, res.HTTPParityMismatches)
	}
	if res.HeapPerSessionBytes > r.HeapCeilingBytes {
		return fmt.Errorf("stream: heap %.0f B/session exceeds the %.0f B ceiling",
			res.HeapPerSessionBytes, r.HeapCeilingBytes)
	}
	if r.ServerPanics[0] != 0 || r.ServerPanics[1] != 0 {
		return fmt.Errorf("stream: server panics: b0=%d b1=%d", r.ServerPanics[0], r.ServerPanics[1])
	}
	return nil
}

// Render writes the report: mode, schedules, the generator's JSON result
// and the per-backend session-table counters.
func (r *StreamReport) Render(w io.Writer) error {
	title := "stream soak (" + r.Mode + ")"
	if _, err := fmt.Fprintf(w, "%s\n%s\nschedule b0: %s\nschedule b1: %s\nring: %d  heap ceiling: %.0f B/session\n\n",
		title, strings.Repeat("=", len(title)), streamScheduleB0, streamScheduleB1, r.Ring, r.HeapCeilingBytes); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n\n", r.Result.Render()); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	tb := Table{Title: "session tables", Header: []string{
		"backend", "live", "opened", "resumed", "rebuilt", "closed", "evicted", "superseded", "kicked", "dup-obs", "updates", "terminals"}}
	for i, st := range r.Backends {
		tb.Add(fmt.Sprintf("b%d", i), strconv.Itoa(st.Live), u(st.Opened), u(st.Resumed), u(st.Rebuilt),
			u(st.Closed), u(st.Evicted), u(st.Superseded), u(st.SlowKicked), u(st.DupObs), u(st.Updates), u(st.Terminals))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "server panics: b0=%d b1=%d\n", r.ServerPanics[0], r.ServerPanics[1])
	return err
}

// startStreamBackend is startChaosBackend with a stream-shaped server
// config (explicit in-flight headroom, session caps, no sweeper — the
// soak wants detached sessions resident between phases).
func startStreamBackend(schedule string, cfg serve.Config) (*chaosBackend, error) {
	spec, err := netchaos.Parse(schedule)
	if err != nil {
		return nil, err
	}
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	proxy := netchaos.New(spec, strings.TrimPrefix(ts.URL, "http://"))
	addr, err := proxy.Start()
	if err != nil {
		ts.Close()
		return nil, err
	}
	return &chaosBackend{srv: srv, ts: ts, proxy: proxy, url: "http://" + addr}, nil
}

// StreamSoak runs the streaming soak and returns its report. The error
// return covers setup problems and context cancellation only; lifecycle
// failures land in the result and are judged by Gate.
func StreamSoak(ctx context.Context, opt StreamOpts) (*StreamReport, error) {
	mode := "full"
	sessions := opt.Sessions
	if opt.Reduced {
		mode = "reduced"
		if sessions <= 0 {
			sessions = 2_000
		}
	} else if sessions <= 0 {
		sessions = 100_000
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 64
	}
	obs := opt.Obs
	if obs <= 0 {
		obs = 16
	}
	ring := opt.Ring
	if ring <= 0 {
		ring = 16
	}
	ceiling := opt.HeapCeilingBytes
	if ceiling <= 0 {
		ceiling = 64 * 1024
	}
	rep := &StreamReport{Mode: mode, Ring: ring, Workers: workers, HeapCeilingBytes: ceiling}

	// Server shape: the obs/open POSTs go through admission, so a
	// single-core default (MaxInFlight = GOMAXPROCS) would serialize the
	// worker pool; give the soak explicit execution and queue headroom.
	// SessionSweep stays off — phase 1 deliberately leaves every session
	// detached and resident, which is the bounded-memory measurement.
	scfg := serve.Config{
		MaxInFlight: 8,
		QueueDepth:  4 * workers,
		MaxSessions: sessions + 64,
		SessionRing: ring,
	}
	// Teardown drains the server first: httptest's Close waits for live
	// handlers, and an attached stream handler only exits once its
	// subscriber is detached.
	b0, err := startStreamBackend(streamScheduleB0, scfg)
	if err != nil {
		return nil, fmt.Errorf("stream: backend b0: %w", err)
	}
	defer func() { b0.srv.Close(); b0.close() }()
	b1, err := startStreamBackend(streamScheduleB1, scfg)
	if err != nil {
		return nil, fmt.Errorf("stream: backend b1: %w", err)
	}
	defer func() { b1.srv.Close(); b1.close() }()

	res, err := session.LoadGen(ctx, session.LoadGenOpts{
		Backends: []string{b0.url, b1.url},
		// The HTTP parity sample bypasses the proxies: it asserts what the
		// backend computes, not what the chaos link does to it.
		Direct:   b0.ts.URL,
		Sessions: sessions,
		Workers:  workers,
		Obs:      obs,
		Ring:     ring,
		Seed:     20260807,
		Model:    capybaraModel(powersys.Capybara()),
		Margin:   *core.DefaultAdaptiveMargin(),
		Client: client.Config{
			Budget:         60 * time.Second,
			AttemptTimeout: 5 * time.Second,
			MaxAttempts:    12,
			BaseBackoff:    2 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
			RetryAfterCap:  50 * time.Millisecond,
			Seed:           9,
		},
		Logf: opt.Logf,
	})
	if err != nil {
		return nil, err
	}
	rep.Result = res
	rep.Backends = [2]session.Stats{b0.srv.Sessions().Stats(), b1.srv.Sessions().Stats()}
	rep.ServerPanics = [2]uint64{b0.srv.Metrics().Panics, b1.srv.Metrics().Panics}
	return rep, nil
}

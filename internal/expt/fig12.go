package expt

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"culpeo/internal/apps"
	"culpeo/internal/sched"
	"culpeo/internal/sweep"
)

// Fig12Row is one bar of Figure 12: events captured for one application
// stream under one scheduler, averaged over trials.
type Fig12Row struct {
	Stream        string
	Scheduler     string
	CapturePct    float64
	Events        int
	Captured      int
	PowerFailures int
}

// Trials is the paper's trial count per configuration.
const Trials = 3

// Fig12Opts tunes the experiment (benchmarks use a shorter horizon).
type Fig12Opts struct {
	Horizon float64 // 0 = apps.DefaultHorizon (300 s)
	Trials  int     // 0 = Trials
}

// fig12Policies returns the two scheduler constructors compared throughout
// the application experiments.
func fig12Policies() []func(app apps.App) sched.Policy {
	return []func(app apps.App) sched.Policy{
		func(apps.App) sched.Policy { return sched.NewCatNapPolicy() },
		func(app apps.App) sched.Policy { return sched.NewCulpeoPolicy(app.Model()) },
	}
}

// fig12Trial runs one (app, policy, trial) cell: a full device simulation
// over the horizon with a cell-private device, policy and trial-seeded RNG.
func fig12Trial(app apps.App, mk func(apps.App) sched.Policy, trial int, horizon float64, fast bool) (sched.Metrics, string, error) {
	pol := mk(app)
	dev, err := app.NewDevice(pol)
	if err != nil {
		return sched.Metrics{}, "", fmt.Errorf("expt: %s/%s: %w", app.Name, pol.Name(), err)
	}
	dev.Fast = fast
	streams := app.Streams(horizon, rand.New(rand.NewSource(int64(trial)+1)))
	met, err := dev.Run(streams, horizon)
	if err != nil {
		return sched.Metrics{}, "", fmt.Errorf("expt: %s/%s: %w", app.Name, pol.Name(), err)
	}
	return met, pol.Name(), nil
}

// Fig12 runs PS, RR and NMR under CatNap and Culpeo. The app × policy ×
// trial grid runs on the sweep pool; every cell is one independent device
// simulation, and the per-stream accumulation happens afterwards in cell
// order (addition commutes, so the totals equal the serial path's).
func Fig12(ctx context.Context, opt Fig12Opts) ([]Fig12Row, error) {
	horizon := opt.Horizon
	if horizon <= 0 {
		horizon = apps.DefaultHorizon
	}
	trials := opt.Trials
	if trials <= 0 {
		trials = Trials
	}

	allApps := apps.All()
	policies := fig12Policies()
	type cell struct {
		met sched.Metrics
		pol string
	}
	g := sweep.NewGrid(len(allApps), len(policies), trials)
	cells, err := sweep.Run(ctx, g, func(_ context.Context, c sweep.Cell) (cell, error) {
		app := allApps[c.Coords[0]]
		met, pol, err := fig12Trial(app, policies[c.Coords[1]], c.Coords[2], horizon, FastEnabled(ctx))
		if err != nil {
			return cell{}, fmt.Errorf("expt: fig12 cell: %w", err)
		}
		return cell{met: met, pol: pol}, nil
	})
	if err != nil {
		return nil, err
	}

	type key struct{ stream, policy string }
	acc := map[key]*Fig12Row{}
	for _, c := range cells {
		for name, sm := range c.met.PerStream {
			k := key{name, c.pol}
			r := acc[k]
			if r == nil {
				r = &Fig12Row{Stream: name, Scheduler: c.pol}
				acc[k] = r
			}
			r.Events += sm.Events
			r.Captured += sm.Captured
			r.PowerFailures += c.met.PowerFailures
		}
	}

	var rows []Fig12Row
	for _, r := range acc {
		if r.Events > 0 {
			r.CapturePct = float64(r.Captured) / float64(r.Events) * 100
		} else {
			r.CapturePct = 100
		}
		rows = append(rows, *r)
	}
	order := map[string]int{"PS": 0, "RR": 1, "NMR-mic": 2, "NMR-BLE": 3}
	sort.Slice(rows, func(i, j int) bool {
		if order[rows[i].Stream] != order[rows[j].Stream] {
			return order[rows[i].Stream] < order[rows[j].Stream]
		}
		return rows[i].Scheduler < rows[j].Scheduler
	})
	return rows, nil
}

// Fig12Table renders the rows.
func Fig12Table(rows []Fig12Row) *Table {
	t := &Table{
		Title:  "Figure 12: events captured (%) — full applications",
		Header: []string{"stream", "scheduler", "captured %", "captured/events", "power failures"},
		Caption: "Culpeo's V_safe estimates eliminate the unexpected power " +
			"failures that make CatNap miss events and spend time recharging.",
	}
	for _, r := range rows {
		t.Add(r.Stream, r.Scheduler, f1(r.CapturePct),
			fmt.Sprintf("%d/%d", r.Captured, r.Events), f0(float64(r.PowerFailures)))
	}
	return t
}

// Fig13Row is one bar of Figure 13: capture rate at a given event-rate
// regime.
type Fig13Row struct {
	App        string
	Rate       apps.Rate
	Scheduler  string
	CapturePct float64
	Events     int
	Captured   int
}

// Fig13 sweeps PS and RR over the slow/achievable/too-fast regimes. The
// rate × app × policy × trial grid runs on the sweep pool.
func Fig13(ctx context.Context, opt Fig12Opts) ([]Fig13Row, error) {
	horizon := opt.Horizon
	if horizon <= 0 {
		horizon = apps.DefaultHorizon
	}
	trials := opt.Trials
	if trials <= 0 {
		trials = Trials
	}

	rates := []apps.Rate{apps.Slow, apps.Achievable, apps.TooFast}
	mkApps := []func(apps.Rate) apps.App{apps.PeriodicSensingAt, apps.ResponsiveReportingAt}
	policies := fig12Policies()

	type cell struct {
		met sched.Metrics
		pol string
	}
	g := sweep.NewGrid(len(rates), len(mkApps), len(policies), trials)
	cells, err := sweep.Run(ctx, g, func(_ context.Context, c sweep.Cell) (cell, error) {
		app := mkApps[c.Coords[1]](rates[c.Coords[0]])
		met, pol, err := fig12Trial(app, policies[c.Coords[2]], c.Coords[3], horizon, FastEnabled(ctx))
		if err != nil {
			return cell{}, fmt.Errorf("expt: fig13 cell: %w", err)
		}
		return cell{met: met, pol: pol}, nil
	})
	if err != nil {
		return nil, err
	}

	var rows []Fig13Row
	for ri, rate := range rates {
		for ai, mkApp := range mkApps {
			app := mkApp(rate)
			for pi := range policies {
				events, captured := 0, 0
				var polName string
				for trial := 0; trial < trials; trial++ {
					c := cells[((ri*len(mkApps)+ai)*len(policies)+pi)*trials+trial]
					polName = c.pol
					for _, sm := range c.met.PerStream {
						events += sm.Events
						captured += sm.Captured
					}
				}
				pct := 100.0
				if events > 0 {
					pct = float64(captured) / float64(events) * 100
				}
				rows = append(rows, Fig13Row{
					App: app.Name, Rate: rate, Scheduler: polName,
					CapturePct: pct, Events: events, Captured: captured,
				})
			}
		}
	}
	return rows, nil
}

// Fig13Table renders the rows.
func Fig13Table(rows []Fig13Row) *Table {
	t := &Table{
		Title:  "Figure 13: events captured (%) vs event-arrival regime",
		Header: []string{"app", "rate", "scheduler", "captured %", "captured/events"},
		Caption: "Culpeo makes the plot make sense: feasible rates are " +
			"captured nearly fully. CatNap sees little or inverted benefit from " +
			"slowing down — more idle time lets its background work discharge " +
			"the buffer further before the next event.",
	}
	for _, r := range rows {
		t.Add(r.App, r.Rate.String(), r.Scheduler, f1(r.CapturePct),
			fmt.Sprintf("%d/%d", r.Captured, r.Events))
	}
	return t
}

// The shard soak: the resilience acceptance gate for internal/shard. It
// boots three culpeod shards behind deterministic netchaos proxies,
// drives a sequential mixed workload through a rendezvous Router, and
// walks the fleet through the full lifecycle the sharded tier promises
// to survive:
//
//	mixed      — routed traffic under light latency/503 faults, plus a
//	             network partition window that blackholes exactly one
//	             shard (netchaos `partition`, matched by upstream port);
//	killed     — that shard hard-killed mid-run (listener closed);
//	left       — the shard removed from the Topology (epoch 2);
//	rejoined   — a replacement joined at a fresh address (epoch 3),
//	             cold-cached but serving its keyspace slice again;
//	drained    — a different shard set draining, detected by the
//	             router's synchronous probes, traffic failing over;
//	readmitted — the drain cleared, the shard probed healthy again.
//
// The gates: every call in every phase succeeds (failover may change
// *which* shard answers, never *whether* one answers), every response is
// bit-identical (math.Float64bits) to the direct library path, no server
// panics, and the full routing/breaker/topology transition log matches a
// golden file byte for byte across three runs. Determinism comes from
// the same machinery as the chaos soak: connection-index fault windows,
// one connection per attempt, event-counted breaker cooldowns, and
// probes driven synchronously on the router's call counter.
package expt

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/client"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/netchaos"
	"culpeo/internal/serve"
	"culpeo/internal/shard"
)

// shardSoakSpec is the fleet-wide fault schedule. Every proxy gets the
// same string (that is the point of the partition kind: one spec
// describes the whole fleet's weather), but only the proxy whose
// upstream port is $P1 — shard s1's — blackholes during the partition
// window. $P1 is substituted with the real ephemeral port at run time
// and masked back to $P1 in the rendered report.
const shardSoakSpec = "seed:5;" +
	"latency:d=1ms,from=0,count=2,every=11;" +
	"h503:retryafter=1,from=7,count=1,every=23;" +
	"partition:plo=$P1,from=4,count=4"

// ShardSoakOpts configures a shard soak run.
type ShardSoakOpts struct {
	// Reduced shrinks the phase schedule for the `make shard` -race gate.
	Reduced bool
}

// shardSoakPhases is the per-phase call budget.
type shardSoakPhases struct {
	Mixed, Killed, Left, Rejoined, Drained, Readmitted int
}

func (p shardSoakPhases) total() int {
	return p.Mixed + p.Killed + p.Left + p.Rejoined + p.Drained + p.Readmitted
}

// ShardSoakReport is the outcome of one soak. Render writes the
// golden-locked text form; Gate returns nil iff every property held.
type ShardSoakReport struct {
	Mode       string
	Phases     shardSoakPhases
	Calls      int
	ParityOK   int
	Mismatches []string
	CallErrors []string
	Events     []shard.Event
	Shards     []shard.ShardMetrics
	// PartitionFates counts connections the partition fault actually
	// blackholed on s1's proxy during the mixed phase — the proof that the
	// partition window engaged rather than silently expiring unvisited.
	PartitionFates int
	FinalEpoch     uint64
	Panics         []string // "s0=0", "s1=0", "s1'=0", "s2=0"
	PanicsTotal    uint64
}

// Gate returns nil when the soak satisfied every acceptance property.
func (r *ShardSoakReport) Gate() error {
	if len(r.CallErrors) > 0 {
		return fmt.Errorf("shardsoak: %d/%d calls failed (first: %s)", len(r.CallErrors), r.Calls, r.CallErrors[0])
	}
	if len(r.Mismatches) > 0 {
		return fmt.Errorf("shardsoak: %d parity mismatches (first: %s)", len(r.Mismatches), r.Mismatches[0])
	}
	if r.ParityOK != r.Calls {
		return fmt.Errorf("shardsoak: parity proven on %d/%d calls", r.ParityOK, r.Calls)
	}
	if r.PanicsTotal != 0 {
		return fmt.Errorf("shardsoak: server panics: %v", r.Panics)
	}
	if r.FinalEpoch != 3 {
		return fmt.Errorf("shardsoak: final topology epoch %d, want 3", r.FinalEpoch)
	}
	if r.PartitionFates == 0 {
		return fmt.Errorf("shardsoak: partition window never engaged on s1's proxy")
	}
	// Milestones: the lifecycle must actually have happened — a soak that
	// quietly never failed over proves nothing.
	var s1Open, s1Failover, epoch2, epoch3, s0Drained, s0Readmitted bool
	for _, ev := range r.Events {
		switch {
		case ev.Shard == "s1" && ev.To == "open":
			s1Open = true
		case ev.Shard == "route" && ev.From == "s1":
			s1Failover = true
		case ev.Shard == "topology" && ev.To == "epoch=2":
			epoch2 = true
		case ev.Shard == "topology" && ev.To == "epoch=3":
			epoch3 = true
		case ev.Shard == "s0" && ev.Cause == "draining":
			s0Drained = true
		case ev.Shard == "s0" && ev.Cause == "probe ok":
			s0Readmitted = true
		}
	}
	for name, ok := range map[string]bool{
		"s1 breaker opened":        s1Open,
		"failover away from s1":    s1Failover,
		"topology epoch 2 (leave)": epoch2,
		"topology epoch 3 (join)":  epoch3,
		"s0 drain ejection":        s0Drained,
		"s0 probe readmission":     s0Readmitted,
	} {
		if !ok {
			return fmt.Errorf("shardsoak: lifecycle milestone missing: %s", name)
		}
	}
	// Every surviving shard must advertise the identity and final epoch
	// the control plane pushed — the "did my topology push land" check.
	for _, sm := range r.Shards {
		if len(sm.Pool.Backends) != 1 {
			return fmt.Errorf("shardsoak: %s: %d backends", sm.Shard.ID, len(sm.Pool.Backends))
		}
		b := sm.Pool.Backends[0]
		if b.ShardID != sm.Shard.ID {
			return fmt.Errorf("shardsoak: %s advertises shard_id %q", sm.Shard.ID, b.ShardID)
		}
		if b.TopologyEpoch != 3 {
			return fmt.Errorf("shardsoak: %s advertises topology epoch %d, want 3", sm.Shard.ID, b.TopologyEpoch)
		}
		if b.Version != serve.BuildVersion {
			return fmt.Errorf("shardsoak: %s advertises version %q", sm.Shard.ID, b.Version)
		}
	}
	return nil
}

// Render writes the deterministic report. As with the chaos soak, no
// latency or wall-clock figure appears — and the one run-specific value
// in the fault spec (s1's ephemeral upstream port) is masked back to its
// $P1 placeholder, so the report is a pure function of the schedules and
// the workload order.
func (r *ShardSoakReport) Render(w io.Writer) error {
	title := "shard soak (" + r.Mode + ")"
	if _, err := fmt.Fprintf(w, "%s\n%s\nfleet spec: %s\nphases: mixed=%d killed=%d left=%d rejoined=%d drained=%d readmitted=%d\n\n",
		title, strings.Repeat("=", len(title)), shardSoakSpec,
		r.Phases.Mixed, r.Phases.Killed, r.Phases.Left, r.Phases.Rejoined, r.Phases.Drained, r.Phases.Readmitted); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "calls: %d\nparity: %d/%d responses bit-identical to the library path (%d mismatches)\ncall failures: %d\npartitioned connections (s1 proxy): %d\ntopology epoch: %d\nserver panics: %s\n\n",
		r.Calls, r.ParityOK, r.Calls, len(r.Mismatches), len(r.CallErrors), r.PartitionFates, r.FinalEpoch, strings.Join(r.Panics, " ")); err != nil {
		return err
	}
	for _, e := range r.CallErrors {
		if _, err := fmt.Fprintf(w, "FAILED %s\n", e); err != nil {
			return err
		}
	}
	for _, e := range r.Mismatches {
		if _, err := fmt.Fprintf(w, "MISMATCH %s\n", e); err != nil {
			return err
		}
	}

	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	tbl := Table{Title: "shards (final)", Header: []string{
		"shard", "attempts", "ok", "fail", "probes", "probe-fails", "breaker", "ejected", "shard_id", "epoch", "version"}}
	for _, sm := range r.Shards {
		b := sm.Pool.Backends[0]
		tbl.Add(sm.Shard.ID, u(b.Attempts), u(b.Successes), u(b.Failures), u(b.Probes), u(b.ProbeFails),
			b.BreakerState, strconv.FormatBool(b.Ejected), b.ShardID, u(b.TopologyEpoch), b.Version)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}

	head := fmt.Sprintf("transitions (%d)", len(r.Events))
	if _, err := fmt.Fprintf(w, "%s\n%s\n", head, strings.Repeat("-", len(head))); err != nil {
		return err
	}
	for _, ev := range r.Events {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}

// soakShard is one culpeod node behind its chaos proxy.
type soakShard struct {
	srv   *serve.Server
	ts    *httptest.Server
	proxy *netchaos.Proxy
	url   string // proxy-fronted base URL the router dials
}

func startSoakShard(id, spec string) (*soakShard, error) {
	parsed, err := netchaos.Parse(spec)
	if err != nil {
		return nil, err
	}
	srv := serve.New(serve.Config{ShardID: id})
	ts := httptest.NewServer(srv.Handler())
	proxy := netchaos.New(parsed, strings.TrimPrefix(ts.URL, "http://"))
	addr, err := proxy.Start()
	if err != nil {
		ts.Close()
		return nil, err
	}
	return &soakShard{srv: srv, ts: ts, proxy: proxy, url: "http://" + addr}, nil
}

func (s *soakShard) kill() {
	s.proxy.Close()
	s.ts.Close()
}

// ShardSoak runs the sharded-tier lifecycle soak. The error return covers
// setup problems only; workload failures are reported via Gate so a test
// can still render the partial report for diagnosis.
func ShardSoak(ctx context.Context, opt ShardSoakOpts) (*ShardSoakReport, error) {
	phases := shardSoakPhases{Mixed: 30, Killed: 18, Left: 12, Rejoined: 18, Drained: 12, Readmitted: 12}
	mode := "full"
	if opt.Reduced {
		phases = shardSoakPhases{Mixed: 18, Killed: 9, Left: 6, Rejoined: 9, Drained: 6, Readmitted: 6}
		mode = "reduced"
	}
	rep := &ShardSoakReport{Mode: mode, Phases: phases, Calls: phases.total()}
	ref := newChaosRef()

	// Boot the three origin servers first: the fleet spec needs s1's
	// upstream port before any proxy exists.
	servers := make([]*serve.Server, 3)
	origins := make([]*httptest.Server, 3)
	for i := range servers {
		servers[i] = serve.New(serve.Config{ShardID: fmt.Sprintf("s%d", i)})
		origins[i] = httptest.NewServer(servers[i].Handler())
		defer origins[i].Close()
	}
	_, p1, err := net.SplitHostPort(strings.TrimPrefix(origins[1].URL, "http://"))
	if err != nil {
		return nil, fmt.Errorf("shardsoak: s1 port: %w", err)
	}
	spec := strings.ReplaceAll(shardSoakSpec, "$P1", p1)

	fleet := make([]*soakShard, 3)
	shards := make([]shard.Shard, 3)
	for i := range fleet {
		parsed, err := netchaos.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("shardsoak: spec: %w", err)
		}
		proxy := netchaos.New(parsed, strings.TrimPrefix(origins[i].URL, "http://"))
		addr, err := proxy.Start()
		if err != nil {
			return nil, fmt.Errorf("shardsoak: proxy s%d: %w", i, err)
		}
		fleet[i] = &soakShard{srv: servers[i], ts: origins[i], proxy: proxy, url: "http://" + addr}
		defer fleet[i].proxy.Close()
		shards[i] = shard.Shard{ID: fmt.Sprintf("s%d", i), URL: fleet[i].url}
	}

	topo, err := shard.NewTopology(shards...)
	if err != nil {
		return nil, fmt.Errorf("shardsoak: topology: %w", err)
	}
	pushEpoch := func(epoch uint64, srvs ...*serve.Server) {
		for _, s := range srvs {
			s.SetTopologyEpoch(epoch)
		}
	}
	pushEpoch(1, servers...)

	router := shard.NewRouter(topo, shard.RouterConfig{
		Client: client.Config{
			DisableKeepAlives: true, // one connection per attempt: fault windows line up
			Budget:            10 * time.Second,
			AttemptTimeout:    300 * time.Millisecond, // ends a partitioned (blackholed) attempt
			MaxAttempts:       2,
			BaseBackoff:       1 * time.Millisecond,
			MaxBackoff:        5 * time.Millisecond,
			RetryAfterCap:     10 * time.Millisecond,
			Seed:              3,
			ProbeTimeout:      300 * time.Millisecond,
			Breaker: client.BreakerConfig{
				FailureThreshold: 2,
				CooldownCalls:    4, // event-counted: no timers
			},
		},
		ProbeEvery: 10, // synchronous fleet probes on the router's call counter
		OnEvent: func(ev shard.Event) {
			rep.Events = append(rep.Events, ev)
		},
	})
	defer router.Close()

	mismatch := func(call int, label, detail string) {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("call %d (%s): %s", call, label, detail))
	}
	callErr := func(call int, label string, err error) {
		rep.CallErrors = append(rep.CallErrors, fmt.Sprintf("call %d (%s): %v", call, label, err))
	}
	checkEstimate := func(call int, label string, got api.EstimateResponse, refErr error, want api.EstimateResponse) {
		if refErr != nil {
			mismatch(call, label, "reference path failed: "+refErr.Error())
			return
		}
		if !sameEstimate(got, want) {
			mismatch(call, label, fmt.Sprintf("got %+v want %+v", got, want))
			return
		}
		rep.ParityOK++
	}

	peripherals := []struct {
		name    string
		profile load.Profile
	}{
		{"gesture", load.Gesture()},
		{"ble", load.BLERadio()},
		{"mnist", load.ComputeAccel()},
		{"lora", load.LoRa()},
	}

	// doCall issues workload call i (0-based, global across phases): the
	// same six families as the chaos soak, parameters varying with the
	// cycle count so every shard's cache keeps seeing fresh keys.
	doCall := func(i int) {
		call, k := i+1, i/6
		switch i % 6 {
		case 0: // uniform shape
			iLoad, t := 0.006+0.001*float64(k%16), 0.01
			got, err := router.VSafe(ctx, api.VSafeRequest{Load: api.LoadSpec{Shape: "uniform", I: iLoad, T: t}})
			if err != nil {
				callErr(call, "uniform", err)
				return
			}
			want, rerr := ref.estimate(load.NewUniform(iLoad, t))
			checkEstimate(call, "uniform", got, rerr, want)
		case 1: // pulse shape
			iLoad, t := 0.0025+0.0005*float64(k%8), 0.02
			got, err := router.VSafe(ctx, api.VSafeRequest{Load: api.LoadSpec{Shape: "pulse", I: iLoad, T: t}})
			if err != nil {
				callErr(call, "pulse", err)
				return
			}
			want, rerr := ref.estimate(load.NewPulse(iLoad, t))
			checkEstimate(call, "pulse", got, rerr, want)
		case 2: // measured peripheral profile
			p := peripherals[k%len(peripherals)]
			got, err := router.VSafe(ctx, api.VSafeRequest{Load: api.LoadSpec{Peripheral: p.name}})
			if err != nil {
				callErr(call, p.name, err)
				return
			}
			want, rerr := ref.estimate(p.profile)
			checkEstimate(call, p.name, got, rerr, want)
		case 3: // Culpeo-R runtime estimate
			vMin := 2.0 + 0.005*float64(k%4)
			obs := core.Observation{VStart: 2.5 - 0.01*float64(k%5), VMin: vMin, VFinal: vMin + 0.1}
			got, err := router.VSafeR(ctx, api.VSafeRRequest{
				Observation: api.ObservationSpec{VStart: obs.VStart, VMin: obs.VMin, VFinal: obs.VFinal},
			})
			if err != nil {
				callErr(call, "vsafe-r", err)
				return
			}
			want, rerr := ref.vsafeR(obs)
			checkEstimate(call, "vsafe-r", got, rerr, want)
		case 4: // full launch simulation, alternating exact and fast paths
			iLoad, t, fast := 0.011+0.002*float64(k%5), 0.005, k%2 == 1
			got, err := router.Simulate(ctx, api.SimulateRequest{
				Load: api.LoadSpec{Shape: "uniform", I: iLoad, T: t},
				Fast: fast,
			})
			if err != nil {
				callErr(call, "simulate", err)
				return
			}
			want, rerr := ref.simulate(load.NewUniform(iLoad, t), fast)
			if rerr != nil {
				mismatch(call, "simulate", "reference path failed: "+rerr.Error())
				return
			}
			if !sameSimulate(got, want) {
				mismatch(call, "simulate", fmt.Sprintf("got %+v want %+v", got, want))
				return
			}
			rep.ParityOK++
		case 5: // scatter-gathered batch: estimates with a malformed middle
			// element, plus one exact simulation (the batch sim lane).
			a := 0.009 + 0.001*float64(k%10)
			got, err := router.Batch(ctx, api.BatchRequest{
				Requests: []api.VSafeRequest{
					{Load: api.LoadSpec{Shape: "uniform", I: a, T: 0.01}},
					{Load: api.LoadSpec{Shape: "nope", I: 1e-3, T: 1e-3}},
					{Load: api.LoadSpec{Shape: "pulse", I: 0.0035, T: 0.015}},
				},
				Simulations: []api.SimulateRequest{
					{Load: api.LoadSpec{Shape: "pulse", I: 0.004 + 0.001*float64(k%3), T: 0.004}},
				},
			})
			if err != nil {
				callErr(call, "batch", err)
				return
			}
			w0, e0 := ref.estimate(load.NewUniform(a, 0.01))
			w2, e2 := ref.estimate(load.NewPulse(0.0035, 0.015))
			ws, es := ref.simulate(load.NewPulse(0.004+0.001*float64(k%3), 0.004), false)
			switch {
			case e0 != nil || e2 != nil || es != nil:
				mismatch(call, "batch", "reference path failed")
			case len(got.Results) != 3 || got.Results[0].Estimate == nil || got.Results[2].Estimate == nil:
				mismatch(call, "batch", fmt.Sprintf("malformed result set: %+v", got.Results))
			case got.Results[1].Error != chaosBadShapeError:
				mismatch(call, "batch", fmt.Sprintf("element 1 error %q want %q", got.Results[1].Error, chaosBadShapeError))
			case !sameEstimate(*got.Results[0].Estimate, w0) || !sameEstimate(*got.Results[2].Estimate, w2):
				mismatch(call, "batch", "element estimates diverge from library path")
			case len(got.Simulations) != 1 || got.Simulations[0].Result == nil:
				mismatch(call, "batch", fmt.Sprintf("malformed sim result set: %+v", got.Simulations))
			case !sameSimulate(*got.Simulations[0].Result, ws):
				mismatch(call, "batch", "sim element diverges from library path")
			default:
				rep.ParityOK++
			}
		}
	}

	next := 0
	runPhase := func(n int) error {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			doCall(next)
			next++
		}
		return nil
	}

	// Phase 1 — mixed: routed traffic, light faults, the partition window
	// blackholing s1 mid-phase (failover, breaker open, probe ejection)
	// and releasing it (probe readmission) before the phase ends.
	if err := runPhase(phases.Mixed); err != nil {
		return nil, err
	}
	for _, ev := range fleet[1].proxy.Events() {
		if strings.Contains(ev.Fate, "partition") {
			rep.PartitionFates++
		}
	}

	// Phase 2 — killed: s1's listener and origin close mid-run. Connection
	// refused is instant, so failover costs almost nothing once the
	// breaker opens.
	fleet[1].kill()
	if err := runPhase(phases.Killed); err != nil {
		return nil, err
	}

	// Phase 3 — left: the control plane removes s1 (epoch 2); the router
	// re-resolves on its next call without dropping anything, and s1's
	// keyspace slice settles onto the failover candidates.
	if _, err := topo.Leave("s1"); err != nil {
		return nil, fmt.Errorf("shardsoak: leave: %w", err)
	}
	pushEpoch(2, servers[0], servers[2])
	if err := runPhase(phases.Left); err != nil {
		return nil, err
	}

	// Phase 4 — rejoined: a replacement s1 boots at a fresh address behind
	// a fresh proxy (same fleet spec; its new upstream port is outside the
	// partition range, as a healed partition would be), joins as epoch 3,
	// and serves its slice again from a cold cache.
	s1b, err := startSoakShard("s1", spec)
	if err != nil {
		return nil, fmt.Errorf("shardsoak: rejoin s1: %w", err)
	}
	defer s1b.kill()
	if _, err := topo.Join(shard.Shard{ID: "s1", URL: s1b.url}); err != nil {
		return nil, fmt.Errorf("shardsoak: join: %w", err)
	}
	pushEpoch(3, servers[0], servers[2], s1b.srv)
	if err := runPhase(phases.Rejoined); err != nil {
		return nil, err
	}

	// Phase 5 — drained: s0 starts draining. It still answers work
	// requests (that is what makes drains graceful), so only the router's
	// probes can see it; an explicit fleet probe here stands in for the
	// cadence tick a production router would rely on.
	servers[0].SetDraining(true)
	router.ProbeAll(ctx)
	if err := runPhase(phases.Drained); err != nil {
		return nil, err
	}

	// Phase 6 — readmitted: the drain clears, a probe readmits s0, and
	// its keyspace slice comes home to a still-warm cache.
	servers[0].SetDraining(false)
	router.ProbeAll(ctx)
	if err := runPhase(phases.Readmitted); err != nil {
		return nil, err
	}

	// Final fleet probe: refresh every shard's advertised identity so the
	// report records what the fleet believes, then snapshot.
	router.ProbeAll(ctx)
	rep.Shards = router.Metrics()
	rep.FinalEpoch = router.Epoch()
	rep.Panics = []string{
		fmt.Sprintf("s0=%d", servers[0].Metrics().Panics),
		fmt.Sprintf("s1=%d", servers[1].Metrics().Panics),
		fmt.Sprintf("s1'=%d", s1b.srv.Metrics().Panics),
		fmt.Sprintf("s2=%d", servers[2].Metrics().Panics),
	}
	rep.PanicsTotal = servers[0].Metrics().Panics + servers[1].Metrics().Panics +
		s1b.srv.Metrics().Panics + servers[2].Metrics().Panics
	return rep, nil
}

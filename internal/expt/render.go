// Package expt contains one driver per table and figure of the paper's
// evaluation. Each driver returns typed rows; the Render helpers print the
// same tables/series the paper reports. cmd/culpeo and the repository's
// benchmarks both call into this package, so the numbers in the README can
// be regenerated from either.
package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len([]rune(t.Title)))); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	if t.Caption != "" {
		if _, err := fmt.Fprintf(w, "\n%s\n", t.Caption); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as CSV.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

package expt

import (
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/trace"
)

// Fig1bResult decomposes a load's voltage drop into its energy and ESR
// components — the phenomenon of Figure 1(b).
type Fig1bResult struct {
	VBefore    float64 // terminal voltage before the load
	VMin       float64 // minimum terminal voltage under load
	VAfter     float64 // terminal voltage after the rebound settles
	TotalDrop  float64 // VBefore − VMin
	EnergyDrop float64 // VBefore − VAfter: the part energy accounting sees
	ESRDrop    float64 // VAfter − VMin: the part energy accounting misses
	Trace      *trace.Recorder
}

// Fig1b runs a 50 mA, 100 ms load on the Capybara bank from 2.45 V and
// separates the measured drop into consumed energy and the ESR drop that
// rebounds.
func Fig1b() (Fig1bResult, error) {
	cfg := powersys.Capybara()
	sys, err := powersys.New(cfg)
	if err != nil {
		return Fig1bResult{}, err
	}
	if err := sys.DischargeTo(2.45); err != nil {
		return Fig1bResult{}, err
	}
	sys.Monitor().Force(true)
	rec := trace.NewRecorder(8)
	res := sys.Run(load.LoRa(), powersys.RunOptions{Recorder: rec})
	out := Fig1bResult{
		VBefore: res.VStart,
		VMin:    res.VMin,
		VAfter:  res.VFinal,
		Trace:   rec,
	}
	out.TotalDrop = out.VBefore - out.VMin
	out.EnergyDrop = out.VBefore - out.VAfter
	out.ESRDrop = out.VAfter - out.VMin
	return out, nil
}

// Fig1bTable renders the decomposition.
func (r Fig1bResult) Table() *Table {
	t := &Table{
		Title:  "Figure 1(b): ESR drop and rebound (50 mA / 100 ms on the 45 mF bank)",
		Header: []string{"quantity", "volts"},
		Caption: "The 'missed drop' is the ESR component: invisible to " +
			"energy-only charge accounting, but able to cross V_off.",
	}
	t.Add("V before load", f3(r.VBefore))
	t.Add("V minimum under load", f3(r.VMin))
	t.Add("V after rebound", f3(r.VAfter))
	t.Add("total drop", f3(r.TotalDrop))
	t.Add("drop due to consumed energy", f3(r.EnergyDrop))
	t.Add("missed drop due to ESR", f3(r.ESRDrop))
	return t
}

// Fig4Result reproduces Figure 4: a LoRa transmission on a high-ESR
// capacitor powers the device off while ample stored energy remains.
type Fig4Result struct {
	VStart           float64
	PowerFailed      bool
	FailTime         float64
	EnergyBefore     float64
	EnergyAfter      float64
	EnergyRemainPct  float64
	ThresholdPctOfOp float64 // starting point (as % of operating range) below which the radio fails
}

// Fig4 runs the motivating example exactly as the paper illustrates it: a
// 50 mA load drawn directly from a 10 Ω-ESR, 45 mF capacitor in a
// 2.4 V–1.6 V window. (The figure abstracts the booster away — 50 mA flows
// through the capacitor itself, producing the quoted 500 mV drop. With a
// boost converter in the path, 10 Ω could not even deliver the load.)
func Fig4() (Fig4Result, error) {
	const (
		c, esr       = 45e-3, 10.0
		vOff, vHigh  = 1.6, 2.4
		iLoad, tLoad = 50e-3, 100e-3
		dt           = 8e-6
	)
	run := func(vStart float64) (failed bool, remainPct, failT float64) {
		voc := vStart
		e0 := 0.5 * c * voc * voc
		steps := int(tLoad / dt)
		for i := 0; i < steps; i++ {
			vt := voc - iLoad*esr
			if vt < vOff {
				return true, 0.5 * c * voc * voc / e0 * 100, float64(i) * dt
			}
			voc -= iLoad * dt / c
		}
		return false, 0.5 * c * voc * voc / e0 * 100, 0
	}

	out := Fig4Result{VStart: 2.0}
	failed, remain, failT := run(2.0)
	out.PowerFailed = failed
	out.EnergyRemainPct = remain
	out.FailTime = failT
	out.EnergyBefore = 0.5 * c * 2.0 * 2.0
	out.EnergyAfter = out.EnergyBefore * remain / 100

	// Minimum safe starting fraction of the operating range: the 500 mV
	// drop plus the consumed charge (the paper quotes ≈64.5 %).
	lo, hi := vOff, vHigh
	for i := 0; i < 40; i++ {
		mid := 0.5 * (lo + hi)
		if f, _, _ := run(mid); f {
			lo = mid
		} else {
			hi = mid
		}
	}
	out.ThresholdPctOfOp = (hi - vOff) / (vHigh - vOff) * 100
	return out, nil
}

// Table renders the Figure 4 narrative.
func (r Fig4Result) Table() *Table {
	t := &Table{
		Title:  "Figure 4: power-off despite stored energy (10 Ω ESR, 50 mA LoRa)",
		Header: []string{"quantity", "value"},
		Caption: "Energy-wise the packet is cheap, but the ESR drop crosses " +
			"V_off: the device turns off with most of its energy stranded.",
	}
	t.Add("start voltage", f3(r.VStart)+" V")
	if r.PowerFailed {
		t.Add("outcome", "POWER FAILURE at t="+f3(r.FailTime)+" s")
	} else {
		t.Add("outcome", "completed")
	}
	t.Add("stored energy remaining", f1(r.EnergyRemainPct)+" %")
	t.Add("min safe start (% of 2.4–1.6 V range)", f1(r.ThresholdPctOfOp)+" %")
	return t
}

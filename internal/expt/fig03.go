package expt

import (
	"context"

	"culpeo/internal/capacitor"
	"culpeo/internal/partsdb"
	"culpeo/internal/units"
)

// Fig3Result is the volume-versus-ESR sweep of Figure 3.
type Fig3Result struct {
	Banks     []capacitor.Bank
	Summaries []partsdb.Summary
}

// Fig3 assembles 45 mF banks from the synthetic part catalogue. The 2000
// per-part assembly cells run on the sweep worker pool.
func Fig3(ctx context.Context) (Fig3Result, error) {
	banks, err := partsdb.BankSweep(ctx, partsdb.Catalog(partsdb.DefaultSeed), partsdb.TargetBankC)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{Banks: banks, Summaries: partsdb.Summarize(banks)}, nil
}

// Table renders the per-technology summary (the figure's annotations).
func (r Fig3Result) Table() *Table {
	t := &Table{
		Title:  "Figure 3: 45 mF banks — volume vs ESR by capacitor technology",
		Header: []string{"technology", "banks", "min volume", "ESR @ min", "parts @ min", "DCL @ min"},
		Caption: "Supercapacitors reach the smallest volume with few parts and " +
			"nA leakage, at the cost of the highest ESR — the cost Culpeo addresses.",
	}
	for _, s := range r.Summaries {
		t.Add(
			s.Tech.String(),
			f0(float64(s.Banks)),
			f1(s.MinVolume)+" mm³",
			units.FormatOhm(s.ESRAtMin),
			f0(float64(s.PartsAtMin)),
			units.FormatA(s.DCLAtMin),
		)
	}
	return t
}

// Points renders the full scatter as CSV-ready rows (volume mm³, ESR Ω,
// technology) — the figure's point cloud.
func (r Fig3Result) Points() *Table {
	t := &Table{
		Title:  "Figure 3 point cloud",
		Header: []string{"volume_mm3", "esr_ohm", "parts", "dcl_a", "technology"},
	}
	for _, b := range r.Banks {
		t.Add(
			f1(b.Volume()),
			f3(b.ESR()),
			f0(float64(b.Count)),
			units.FormatA(b.DCL()),
			b.Part.Tech.String(),
		)
	}
	return t
}

// The chaos soak: the resilience acceptance gate for internal/client and
// internal/netchaos. It boots two real culpeod backends (internal/serve)
// behind two deterministic fault-injecting proxies, drives a mixed
// workload — synthetic shapes, peripherals, Culpeo-R observations,
// simulations and batches — through one client.Pool, and gates on four
// properties at once:
//
//  1. every call eventually succeeds within its budget (the injected
//     503 bursts, resets, blackholes and flaps are absorbed by retry,
//     failover and the circuit breakers);
//  2. every response is bit-identical (math.Float64bits) to the direct
//     library path — resilience machinery must never corrupt a result;
//  3. neither server panics;
//  4. the breaker/failover transition log matches a golden file.
//
// Property 4 is what makes this a *deterministic* chaos test rather than
// a flaky one: fault schedules live in connection-index space (netchaos),
// the pool opens one connection per attempt (DisableKeepAlives), breaker
// cooldowns are event-counted (CooldownCalls) and probes are synchronous
// (ProbeEvery), so the full transition history is a pure function of the
// schedules and the workload order. Three runs produce three identical
// reports.
package expt

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/capacitor"
	"culpeo/internal/client"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/netchaos"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/serve"
)

// The fault schedules, in connection-index space (0-based accepted
// connections per proxy; probes and attempts each consume one index).
// b0 is the rough neighborhood — 503 bursts, mid-headers resets,
// blackholes and a two-connection flap cycle; b1 degrades more gently —
// occasional 503s, slow drip-fed responses and a rare flap.
const (
	chaosScheduleB0 = "latency:d=1ms,from=0,count=2,every=9;" +
		"h503:retryafter=1,from=4,count=2,every=17;" +
		"reset:after=120,from=9,count=1,every=29;" +
		"blackhole:from=23,count=1,every=41;" +
		"down:from=33,count=2,every=37"
	chaosScheduleB1 = "h503:retryafter=1,from=11,count=1,every=23;" +
		"slow:chunk=48,delay=1ms,from=6,count=1,every=13;" +
		"down:from=29,count=1,every=43"
	// The hedge phase's asymmetry: b0 answers correctly but 250 ms late,
	// far beyond the 40 ms hedge delay, so hedged batches fire a second
	// attempt with a wide margin on either side.
	chaosHedgeSlow = "latency:d=250ms"
)

// ChaosOpts configures a chaos soak run.
type ChaosOpts struct {
	// Reduced shrinks the workload (80 calls instead of 240) for the
	// `make chaos` -race gate; the full soak is the default.
	Reduced bool
	// Lax widens the client's timing headroom (per-attempt timeout,
	// budget, probe timeout) for runs sharing a saturated machine: the
	// -race chaos test runs this soak concurrently with every sweep
	// driver on an oversubscribed pool, where even a healthy request can
	// take seconds of wall clock and the production-shaped 400 ms attempt
	// timeout reads as a dead backend. Fault schedules, attempt ordering
	// and the gates are unchanged — fates are assigned per connection
	// index, not by timing — so this loosens nothing the soak asserts.
	// Golden runs leave it unset; the defaults are what the recorded
	// transcripts describe.
	Lax bool
}

// ChaosReport is the outcome of one soak: deterministic counters, the
// transition log, and the parity/panic verdicts. Render writes the
// golden-locked text form; Gate returns nil iff every property held.
type ChaosReport struct {
	Mode         string // "full" or "reduced"
	Workload     int    // phase-A calls issued
	Metrics      client.MetricsSnapshot
	Transitions  []string // breaker/ejection events, in order
	ParityOK     int      // responses proven bit-identical
	Mismatches   []string // parity violations (want none)
	CallErrors   []string // calls that failed outright (want none)
	HedgeCalls   int      // phase-B hedged batch calls
	HedgeOK      int      // ...that succeeded with parity intact
	Hedges       uint64   // hedge attempts actually launched
	ServerPanics [2]uint64
}

// Gate returns nil when the soak satisfied every acceptance property.
func (r *ChaosReport) Gate() error {
	if len(r.CallErrors) > 0 {
		return fmt.Errorf("chaos: %d/%d calls failed (first: %s)", len(r.CallErrors), r.Workload, r.CallErrors[0])
	}
	if len(r.Mismatches) > 0 {
		return fmt.Errorf("chaos: %d parity mismatches (first: %s)", len(r.Mismatches), r.Mismatches[0])
	}
	if r.HedgeOK != r.HedgeCalls {
		return fmt.Errorf("chaos: hedged batches %d/%d ok", r.HedgeOK, r.HedgeCalls)
	}
	if r.Hedges == 0 {
		return fmt.Errorf("chaos: no hedge ever fired against a 250 ms-slow primary")
	}
	if r.ServerPanics[0] != 0 || r.ServerPanics[1] != 0 {
		return fmt.Errorf("chaos: server panics: b0=%d b1=%d", r.ServerPanics[0], r.ServerPanics[1])
	}
	return nil
}

// Render writes the deterministic report: schedules, pool and per-backend
// counters, the verdict lines and the full transition log. Latencies and
// wall-clock durations are deliberately absent — everything printed here
// is a pure function of the schedules and the workload order, which is
// what lets TestChaosSoak golden-lock the output.
func (r *ChaosReport) Render(w io.Writer) error {
	title := "chaos soak (" + r.Mode + ")"
	if _, err := fmt.Fprintf(w, "%s\n%s\nschedule b0: %s\nschedule b1: %s\n\n",
		title, strings.Repeat("=", len(title)), chaosScheduleB0, chaosScheduleB1); err != nil {
		return err
	}

	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	pool := Table{Title: "pool", Header: []string{"counter", "value"}}
	m := r.Metrics
	pool.Add("calls", u(m.Calls))
	pool.Add("successes", u(m.Successes))
	pool.Add("failures", u(m.Failures))
	pool.Add("attempts", u(m.Attempts))
	pool.Add("retries", u(m.Retries))
	pool.Add("failovers", u(m.Failovers))
	pool.Add("abandoned", u(m.Abandoned))
	pool.Add("retry-after honored", u(m.RetryAfterHonored))
	pool.Add("breaker rejects", u(m.BreakerRejects))
	if err := pool.Render(w); err != nil {
		return err
	}

	bk := Table{Title: "backends", Header: []string{"backend", "attempts", "ok", "fail", "probes", "probe-fails", "breaker", "ejected"}}
	for _, b := range m.Backends {
		bk.Add(b.Name, u(b.Attempts), u(b.Successes), u(b.Failures),
			u(b.Probes), u(b.ProbeFails), b.BreakerState, strconv.FormatBool(b.Ejected))
	}
	if err := bk.Render(w); err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w, "parity: %d/%d responses bit-identical to the library path (%d mismatches)\n",
		r.ParityOK, r.Workload, len(r.Mismatches)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "hedged batch: %d/%d calls succeeded with parity intact\n", r.HedgeOK, r.HedgeCalls); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "call failures: %d\nserver panics: b0=%d b1=%d\n\n",
		len(r.CallErrors), r.ServerPanics[0], r.ServerPanics[1]); err != nil {
		return err
	}
	for _, e := range r.CallErrors {
		if _, err := fmt.Fprintf(w, "FAILED %s\n", e); err != nil {
			return err
		}
	}
	for _, e := range r.Mismatches {
		if _, err := fmt.Fprintf(w, "MISMATCH %s\n", e); err != nil {
			return err
		}
	}

	head := fmt.Sprintf("transitions (%d)", len(r.Transitions))
	if _, err := fmt.Fprintf(w, "%s\n%s\n", head, strings.Repeat("-", len(head))); err != nil {
		return err
	}
	for _, t := range r.Transitions {
		if _, err := fmt.Fprintln(w, t); err != nil {
			return err
		}
	}
	return nil
}

// chaosRef computes the direct library-path answers the served responses
// must match bit for bit. The estimate model mirrors the zero-value
// PowerSpec resolution (nominal C, flat ESR — the cmd/vsafe construction);
// the simulation configuration mirrors it too: the storage network is
// collapsed to one equivalent main branch, exactly as serve's resolver
// builds it, and rebuilt fresh per run because a network is stateful.
type chaosRef struct {
	pg profiler.PG
}

func newChaosRef() *chaosRef {
	return &chaosRef{pg: profiler.PG{
		Model: capybaraModel(powersys.Capybara()),
		Cache: core.NewVSafeCache(0),
	}}
}

func (r *chaosRef) estimate(p load.Profile) (api.EstimateResponse, error) {
	est, err := r.pg.Estimate(p)
	if err != nil {
		return api.EstimateResponse{}, err
	}
	return api.EstimateResponse{VSafe: est.VSafe, VDelta: est.VDelta, VE: est.VE}, nil
}

func (r *chaosRef) vsafeR(obs core.Observation) (api.EstimateResponse, error) {
	est, err := core.VSafeR(r.pg.Model, obs)
	if err != nil {
		return api.EstimateResponse{}, err
	}
	return api.EstimateResponse{VSafe: est.VSafe, VDelta: est.VDelta, VE: est.VE}, nil
}

func (r *chaosRef) simulate(p load.Profile, fast bool) (api.SimulateResponse, error) {
	base := powersys.Capybara()
	var aging capacitor.Aging
	aged := aging.Apply(capacitor.Branch{
		Name: "main",
		C:    base.Storage.TotalCapacitance(),
		ESR:  base.Storage.Main().ESR,
	})
	aged.Voltage = base.VHigh
	net, err := capacitor.NewNetwork(&aged)
	if err != nil {
		return api.SimulateResponse{}, err
	}
	cfg := base
	cfg.Storage = net

	sys, err := powersys.New(cfg)
	if err != nil {
		return api.SimulateResponse{}, err
	}
	if err := sys.ChargeTo(cfg.VHigh); err != nil {
		return api.SimulateResponse{}, err
	}
	if err := sys.DischargeTo(cfg.VHigh); err != nil {
		return api.SimulateResponse{}, err
	}
	sys.Monitor().Force(true)
	res := sys.Run(p, powersys.RunOptions{SkipRebound: true, Fast: fast})
	resp := api.SimulateResponse{
		Completed:   res.Completed,
		PowerFailed: res.PowerFailed,
		VStart:      res.VStart,
		VMin:        res.VMin,
		VFinal:      res.VFinal,
		Duration:    res.Duration,
		EnergyUsed:  res.EnergyUsed,
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	return resp, nil
}

// chaosBadShapeError is the per-element error the deliberately malformed
// batch element must report (per-element isolation: its siblings succeed).
const chaosBadShapeError = `bad request: load: unknown shape "nope"`

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func sameEstimate(got, want api.EstimateResponse) bool {
	return sameBits(got.VSafe, want.VSafe) && sameBits(got.VDelta, want.VDelta) && sameBits(got.VE, want.VE)
}

func sameSimulate(got, want api.SimulateResponse) bool {
	return got.Completed == want.Completed && got.PowerFailed == want.PowerFailed &&
		sameBits(got.VStart, want.VStart) && sameBits(got.VMin, want.VMin) &&
		sameBits(got.VFinal, want.VFinal) && sameBits(got.Duration, want.Duration) &&
		sameBits(got.EnergyUsed, want.EnergyUsed) && got.Error == want.Error
}

// chaosBackend is one culpeod instance behind one chaos proxy.
type chaosBackend struct {
	srv   *serve.Server
	ts    *httptest.Server
	proxy *netchaos.Proxy
	url   string // proxy-fronted base URL the pool dials
}

func startChaosBackend(schedule string) (*chaosBackend, error) {
	spec, err := netchaos.Parse(schedule)
	if err != nil {
		return nil, err
	}
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	proxy := netchaos.New(spec, strings.TrimPrefix(ts.URL, "http://"))
	addr, err := proxy.Start()
	if err != nil {
		ts.Close()
		return nil, err
	}
	return &chaosBackend{srv: srv, ts: ts, proxy: proxy, url: "http://" + addr}, nil
}

func (b *chaosBackend) close() {
	b.proxy.Close()
	b.ts.Close()
}

// Chaos runs the soak and returns its report. The error return covers
// setup problems only; workload failures are reported via Gate so a test
// can still render the partial report for diagnosis.
func Chaos(ctx context.Context, opt ChaosOpts) (*ChaosReport, error) {
	n, hedgeN := 240, 8
	mode := "full"
	if opt.Reduced {
		n, hedgeN = 80, 4
		mode = "reduced"
	}
	rep := &ChaosReport{Mode: mode, Workload: n, HedgeCalls: hedgeN}
	ref := newChaosRef()

	// Production-shaped timing by default; starvation headroom under Lax.
	// A blackholed attempt still costs one connection index either way —
	// only the wall-clock cost of waiting it out changes.
	budget := 30 * time.Second
	attemptTimeout := 400 * time.Millisecond
	probeTimeout := 400 * time.Millisecond
	if opt.Lax {
		budget = 180 * time.Second
		attemptTimeout = 10 * time.Second
		probeTimeout = 10 * time.Second
	}

	b0, err := startChaosBackend(chaosScheduleB0)
	if err != nil {
		return nil, fmt.Errorf("chaos: backend b0: %w", err)
	}
	defer b0.close()
	b1, err := startChaosBackend(chaosScheduleB1)
	if err != nil {
		return nil, fmt.Errorf("chaos: backend b1: %w", err)
	}
	defer b1.close()

	pool, err := client.New(client.Config{
		Backends:          []string{b0.url, b1.url},
		DisableKeepAlives: true, // one connection per attempt: schedules line up with attempts
		Budget:            budget,
		AttemptTimeout:    attemptTimeout, // ends a blackholed attempt
		MaxAttempts:       12,
		BaseBackoff:       2 * time.Millisecond,
		MaxBackoff:        20 * time.Millisecond,
		RetryAfterCap:     25 * time.Millisecond, // honor Retry-After, bounded for the soak
		Seed:              7,
		Breaker: client.BreakerConfig{
			FailureThreshold: 2,
			CooldownCalls:    3, // event-counted: no timers in the state machine
		},
		ProbeEvery:   13, // synchronous suspect probes: deterministic ordering
		ProbeTimeout: probeTimeout,
		OnTransition: func(ev client.Event) {
			rep.Transitions = append(rep.Transitions, ev.String())
		},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: pool: %w", err)
	}
	defer pool.Close()

	mismatch := func(call int, label, detail string) {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("call %d (%s): %s", call, label, detail))
	}
	callErr := func(call int, label string, err error) {
		rep.CallErrors = append(rep.CallErrors, fmt.Sprintf("call %d (%s): %v", call, label, err))
	}
	checkEstimate := func(call int, label string, got api.EstimateResponse, refErr error, want api.EstimateResponse) {
		if refErr != nil {
			mismatch(call, label, "reference path failed: "+refErr.Error())
			return
		}
		if !sameEstimate(got, want) {
			mismatch(call, label, fmt.Sprintf("got %+v want %+v", got, want))
			return
		}
		rep.ParityOK++
	}

	peripherals := []struct {
		name    string
		profile load.Profile
	}{
		{"gesture", load.Gesture()},
		{"ble", load.BLERadio()},
		{"mnist", load.ComputeAccel()},
		{"lora", load.LoRa()},
	}

	// Phase A: the sequential mixed workload. Six request families cycle;
	// parameters vary with the cycle count so the caches see fresh work.
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		call, k := i+1, i/6
		switch i % 6 {
		case 0: // uniform shape
			iLoad, t := 0.005+0.001*float64(k%16), 0.01
			got, err := pool.VSafe(ctx, api.VSafeRequest{Load: api.LoadSpec{Shape: "uniform", I: iLoad, T: t}})
			if err != nil {
				callErr(call, "uniform", err)
				continue
			}
			want, rerr := ref.estimate(load.NewUniform(iLoad, t))
			checkEstimate(call, "uniform", got, rerr, want)
		case 1: // pulse shape
			iLoad, t := 0.002+0.0005*float64(k%8), 0.02
			got, err := pool.VSafe(ctx, api.VSafeRequest{Load: api.LoadSpec{Shape: "pulse", I: iLoad, T: t}})
			if err != nil {
				callErr(call, "pulse", err)
				continue
			}
			want, rerr := ref.estimate(load.NewPulse(iLoad, t))
			checkEstimate(call, "pulse", got, rerr, want)
		case 2: // measured peripheral profile
			p := peripherals[k%len(peripherals)]
			got, err := pool.VSafe(ctx, api.VSafeRequest{Load: api.LoadSpec{Peripheral: p.name}})
			if err != nil {
				callErr(call, p.name, err)
				continue
			}
			want, rerr := ref.estimate(p.profile)
			checkEstimate(call, p.name, got, rerr, want)
		case 3: // Culpeo-R runtime estimate
			vMin := 2.0 + 0.005*float64(k%4)
			obs := core.Observation{VStart: 2.5 - 0.01*float64(k%5), VMin: vMin, VFinal: vMin + 0.1}
			got, err := pool.VSafeR(ctx, api.VSafeRRequest{
				Observation: api.ObservationSpec{VStart: obs.VStart, VMin: obs.VMin, VFinal: obs.VFinal},
			})
			if err != nil {
				callErr(call, "vsafe-r", err)
				continue
			}
			want, rerr := ref.vsafeR(obs)
			checkEstimate(call, "vsafe-r", got, rerr, want)
		case 4: // full launch simulation, alternating exact and fast paths
			iLoad, t, fast := 0.01+0.002*float64(k%5), 0.005, k%2 == 1
			got, err := pool.Simulate(ctx, api.SimulateRequest{
				Load: api.LoadSpec{Shape: "uniform", I: iLoad, T: t},
				Fast: fast,
			})
			if err != nil {
				callErr(call, "simulate", err)
				continue
			}
			want, rerr := ref.simulate(load.NewUniform(iLoad, t), fast)
			if rerr != nil {
				mismatch(call, "simulate", "reference path failed: "+rerr.Error())
				continue
			}
			if !sameSimulate(got, want) {
				mismatch(call, "simulate", fmt.Sprintf("got %+v want %+v", got, want))
				continue
			}
			rep.ParityOK++
		case 5: // batch with a deliberately malformed middle element
			a := 0.008 + 0.001*float64(k%10)
			got, err := pool.Batch(ctx, api.BatchRequest{Requests: []api.VSafeRequest{
				{Load: api.LoadSpec{Shape: "uniform", I: a, T: 0.01}},
				{Load: api.LoadSpec{Shape: "nope", I: 1e-3, T: 1e-3}},
				{Load: api.LoadSpec{Shape: "pulse", I: 0.003, T: 0.015}},
			}})
			if err != nil {
				callErr(call, "batch", err)
				continue
			}
			w0, e0 := ref.estimate(load.NewUniform(a, 0.01))
			w2, e2 := ref.estimate(load.NewPulse(0.003, 0.015))
			switch {
			case e0 != nil || e2 != nil:
				mismatch(call, "batch", "reference path failed")
			case len(got.Results) != 3 || got.Results[0].Estimate == nil || got.Results[2].Estimate == nil:
				mismatch(call, "batch", fmt.Sprintf("malformed result set: %+v", got.Results))
			case got.Results[1].Error != chaosBadShapeError:
				mismatch(call, "batch", fmt.Sprintf("element 1 error %q want %q", got.Results[1].Error, chaosBadShapeError))
			case !sameEstimate(*got.Results[0].Estimate, w0) || !sameEstimate(*got.Results[2].Estimate, w2):
				mismatch(call, "batch", "element estimates diverge from library path")
			default:
				rep.ParityOK++
			}
		}
	}
	rep.Metrics = pool.Metrics()

	// Phase B: hedged batches. Fresh proxies give b0 a flat 250 ms of
	// added latency while b1 stays clean; with a 40 ms hedge delay every
	// b0-primary call fires a hedge, and whichever arm answers first must
	// still answer bit-identically. (Which arm wins is timing, so only
	// launch counts and parity — not win counts — are asserted.)
	h0spec, err := netchaos.Parse(chaosHedgeSlow)
	if err != nil {
		return nil, fmt.Errorf("chaos: hedge schedule: %w", err)
	}
	h0 := netchaos.New(h0spec, strings.TrimPrefix(b0.ts.URL, "http://"))
	h0addr, err := h0.Start()
	if err != nil {
		return nil, fmt.Errorf("chaos: hedge proxy: %w", err)
	}
	defer h0.Close()
	h1 := netchaos.New(netchaos.Spec{Seed: 1}, strings.TrimPrefix(b1.ts.URL, "http://"))
	h1addr, err := h1.Start()
	if err != nil {
		return nil, fmt.Errorf("chaos: hedge proxy: %w", err)
	}
	defer h1.Close()

	hpool, err := client.New(client.Config{
		Backends:          []string{"http://" + h0addr, "http://" + h1addr},
		DisableKeepAlives: true,
		Budget:            10 * time.Second,
		AttemptTimeout:    2 * time.Second,
		Seed:              11,
		HedgeDelay:        40 * time.Millisecond,
		Breaker:           client.BreakerConfig{FailureThreshold: 2, CooldownCalls: 3},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: hedge pool: %w", err)
	}
	defer hpool.Close()

	for i := 0; i < hedgeN; i++ {
		a := 0.012 + 0.001*float64(i)
		got, err := hpool.Batch(ctx, api.BatchRequest{Requests: []api.VSafeRequest{
			{Load: api.LoadSpec{Shape: "uniform", I: a, T: 0.01}},
			{Load: api.LoadSpec{Shape: "pulse", I: 0.004, T: 0.012}},
		}})
		if err != nil {
			continue
		}
		w0, e0 := ref.estimate(load.NewUniform(a, 0.01))
		w1, e1 := ref.estimate(load.NewPulse(0.004, 0.012))
		if e0 != nil || e1 != nil || len(got.Results) != 2 ||
			got.Results[0].Estimate == nil || got.Results[1].Estimate == nil ||
			!sameEstimate(*got.Results[0].Estimate, w0) || !sameEstimate(*got.Results[1].Estimate, w1) {
			continue
		}
		rep.HedgeOK++
	}
	rep.Hedges = hpool.Metrics().Hedges

	rep.ServerPanics = [2]uint64{b0.srv.Metrics().Panics, b1.srv.Metrics().Panics}
	return rep, nil
}

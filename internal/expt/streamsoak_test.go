package expt

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"
)

// TestStreamSoak is the streaming acceptance gate at test scale: a reduced
// soak (the `make stream` -race configuration) must pass every gate —
// zero failed sessions, bit-exact estimate/margin/HTTP parity, bounded
// heap, zero panics — and leak no goroutines. The 100k-session full soak
// runs via `culpeo streamtest`; this keeps the gate inside `go test`.
func TestStreamSoak(t *testing.T) {
	// Goroutine settle guard: the soak spins up two servers, two proxies,
	// two pools and a worker fleet; everything must be gone afterward.
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		var after int
		for i := 0; i < 100; i++ {
			if after = runtime.NumGoroutine(); after <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before soak, %d after settling\n%s", before, after, buf)
	})

	sessions := 800
	if testing.Short() {
		sessions = 250
	}
	rep, err := StreamSoak(context.Background(), StreamOpts{
		Reduced:  true,
		Sessions: sessions,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	if err := rep.Gate(); err != nil {
		t.Fatalf("gate: %v\nreport:\n%s", err, buf.Bytes())
	}
	t.Logf("stream soak report:\n%s", buf.Bytes())

	// The chaos links must actually have bitten — a soak where nothing
	// ever reconnected proves much less than it claims.
	if rep.Result.Reconnects == 0 && rep.Result.Rebuilds == 0 {
		t.Errorf("no reconnects or rebuilds: the fault schedules never fired\nreport:\n%s", buf.Bytes())
	}
}

package expt

import "context"

// fastKey is the context key carrying the fast-path request through the
// experiment entry points (the CLIs set it from their -fast flags).
type fastKey struct{}

// WithFast marks the context so experiments run their power-system
// simulations on the analytic segment-advance stepper
// (powersys.RunOptions.Fast). Golden outputs are produced without it; the
// fast path trades bit-identity for wall-clock, staying within the
// sub-millivolt envelope the equivalence tests enforce.
func WithFast(ctx context.Context) context.Context {
	return context.WithValue(ctx, fastKey{}, true)
}

// FastEnabled reports whether WithFast was applied to the context.
func FastEnabled(ctx context.Context) bool {
	on, _ := ctx.Value(fastKey{}).(bool)
	return on
}

package expt

import (
	"bytes"
	"context"
	"os"
	"testing"
)

// TestShardSoak is the sharded-tier acceptance gate: three complete
// lifecycle soaks (partition → kill → leave → rejoin → drain → readmit)
// must (1) pass every gate — 100% eventual success, bit-exact parity,
// zero panics, every lifecycle milestone present — (2) render
// byte-identical reports, and (3) match the recorded golden transition
// log. Under -short the reduced schedule runs against its own golden
// (the `make shard` -race configuration).
//
// Record the goldens with:
//
//	go test ./internal/expt -run TestShardSoak -update
//	go test ./internal/expt -run TestShardSoak -short -update
func TestShardSoak(t *testing.T) {
	opt := ShardSoakOpts{Reduced: testing.Short()}
	name := "shardsoak"
	if opt.Reduced {
		name = "shardsoak-reduced"
	}

	const runs = 3
	var ref []byte
	for r := 0; r < runs; r++ {
		rep, err := ShardSoak(context.Background(), opt)
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatalf("run %d: render: %v", r, err)
		}
		if err := rep.Gate(); err != nil {
			t.Fatalf("run %d failed the gate: %v\nreport:\n%s", r, err, buf.Bytes())
		}
		if r == 0 {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("run %d diverged from run 0 — the soak is not deterministic\n%s",
				r, diffHint(ref, buf.Bytes()))
		}
	}

	path := goldenPath(name)
	if *update {
		if err := os.WriteFile(path, ref, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (record with `go test ./internal/expt -run TestShardSoak -update`, plus -short for the reduced one): %v", err)
	}
	if !bytes.Equal(ref, want) {
		t.Errorf("report differs from %s (re-record with -update if intended)\n%s",
			path, diffHint(want, ref))
	}
}

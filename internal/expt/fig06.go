package expt

import (
	"context"
	"fmt"

	"culpeo/internal/baseline"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// Fig6Row is one bar of Figure 6: an estimator's V_safe error on one pulse
// load, as a percentage of the operating range. Positive errors are
// conservative (the task still completes); negative errors cause failures.
type Fig6Row struct {
	Load        string
	Estimator   string
	GroundTruth float64
	Estimate    float64
	ErrorPct    float64
	Verdict     harness.Verdict
}

// Fig6 evaluates the three energy-only estimators on the six pulse+compute
// loads of Figure 6.
func Fig6() ([]Fig6Row, error) { return Fig6Ctx(context.Background()) }

// Fig6Ctx is Fig6 with the context-carried execution knobs: WithFast
// selects the analytic stepper, WithBatch runs all six ground-truth
// searches in lockstep through the batch stepper (byte-identical on the
// exact lane, so the output is the same either way), WithWarm chains the
// sequential searches — the figure's loads step through pulse currents,
// so each point's V_safe brackets its neighbor's within a guard band.
func Fig6Ctx(ctx context.Context) ([]Fig6Row, error) {
	h, err := harness.New(powersys.Capybara())
	if err != nil {
		return nil, err
	}
	h.Fast = FastEnabled(ctx)
	tasks := load.Fig6Loads()
	gts := make([]float64, len(tasks))
	if BatchEnabled(ctx) {
		reqs := make([]harness.GroundTruthReq, len(tasks))
		for i, task := range tasks {
			reqs[i] = harness.GroundTruthReq{Task: task}
		}
		if gts, err = h.GroundTruthBatch(ctx, reqs); err != nil {
			return nil, fmt.Errorf("expt: fig6 ground truth: %w", err)
		}
	} else {
		warm := WarmEnabled(ctx)
		var hint *harness.Bracket
		for i, task := range tasks {
			if gts[i], err = h.GroundTruthHinted(ctx, task, 0, hint); err != nil {
				return nil, fmt.Errorf("expt: fig6 %s: %w", task.Name(), err)
			}
			if warm {
				hint = &harness.Bracket{Lo: gts[i] - harness.WarmGuardBand, Hi: gts[i] + harness.WarmGuardBand}
			}
		}
	}
	estimators := []baseline.Kind{baseline.EnergyDirect, baseline.CatnapSlow, baseline.CatnapMeasured}
	var rows []Fig6Row
	for i, task := range tasks {
		gt := gts[i]
		for _, k := range estimators {
			est := baseline.Estimate(k, h, task)
			rows = append(rows, Fig6Row{
				Load:        task.Name(),
				Estimator:   k.String(),
				GroundTruth: gt,
				Estimate:    est,
				ErrorPct:    h.ErrorPercent(est, gt),
				Verdict:     harness.Classify(est, gt),
			})
		}
	}
	return rows, nil
}

// Fig6Table renders the rows.
func Fig6Table(rows []Fig6Row) *Table {
	t := &Table{
		Title:  "Figure 6: V_safe error of energy-only estimators (% of operating range)",
		Header: []string{"load (pulse + 100ms compute)", "estimator", "truth V", "estimate V", "error %", "verdict"},
		Caption: "Negative error means the estimator starts the task too low " +
			"and it fails — 'determining the safe starting voltage by energy " +
			"cost alone results in task failure most of the time'.",
	}
	for _, r := range rows {
		t.Add(r.Load, r.Estimator, f3(r.GroundTruth), f3(r.Estimate), f1(r.ErrorPct), r.Verdict.String())
	}
	return t
}

// Package harvester models environmental energy sources for an
// energy-harvesting device: constant bench supplies, diurnal solar
// profiles, cloud-shadowed solar, RF burst harvesting, and recorded-trace
// playback (the paper's evaluation uses "constant, weak harvestable power,
// matched to a solar harvester"; Section V-B's re-profiling policy reacts
// when harvested power changes beyond a threshold).
//
// A Source maps simulation time to instantaneous harvested power at the
// harvester output (before the input booster's conversion loss). All
// sources are deterministic; stochastic ones take a seed.
package harvester

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Source supplies harvested power over time.
type Source interface {
	// Power returns the harvested power (watts) at time t seconds.
	Power(t float64) float64
	// Name identifies the source in reports.
	Name() string
}

// Constant is a fixed-power source (a bench supply, or strong steady sun).
type Constant struct {
	P  float64
	ID string
}

func (c Constant) Power(t float64) float64 {
	if t < 0 {
		return 0
	}
	return c.P
}

func (c Constant) Name() string {
	if c.ID != "" {
		return c.ID
	}
	return fmt.Sprintf("constant-%gW", c.P)
}

// Solar is a clear-sky diurnal profile: zero at night, a raised-cosine bump
// peaking at solar noon.
type Solar struct {
	// Peak is the power at solar noon (W).
	Peak float64
	// DayLength is the daylight duration in seconds (e.g. 12*3600).
	DayLength float64
	// Sunrise is the time-of-day offset of sunrise in seconds.
	Sunrise float64
	// PeriodDays repeats the cycle; 0 means one day of 24 h.
	Period float64
}

// NewSolar builds a 12-hour daylight profile peaking at peak watts.
func NewSolar(peak float64) Solar {
	return Solar{Peak: peak, DayLength: 12 * 3600, Sunrise: 6 * 3600, Period: 24 * 3600}
}

func (s Solar) Power(t float64) float64 {
	if t < 0 || s.DayLength <= 0 {
		return 0
	}
	period := s.Period
	if period <= 0 {
		period = 24 * 3600
	}
	tod := math.Mod(t, period)
	x := (tod - s.Sunrise) / s.DayLength
	if x < 0 || x > 1 {
		return 0
	}
	// Raised cosine: 0 at sunrise/sunset, Peak at midday.
	return s.Peak * 0.5 * (1 - math.Cos(2*math.Pi*x))
}

func (s Solar) Name() string { return fmt.Sprintf("solar-%gW", s.Peak) }

// CloudySolar modulates a base source with random cloud shadows: power
// drops to Attenuation of the base for exponentially distributed periods.
// Deterministic per seed: shadows are pre-generated on first use for the
// configured horizon.
type CloudySolar struct {
	Base        Source
	Attenuation float64 // multiplier while shadowed, e.g. 0.2
	MeanSunny   float64 // mean un-shadowed interval (s)
	MeanCloudy  float64 // mean shadow duration (s)
	Horizon     float64 // pre-generated schedule length (s)
	Seed        int64

	schedule []shadow // sorted by start
	built    bool
}

type shadow struct{ start, end float64 }

// build pre-generates the shadow schedule.
func (c *CloudySolar) build() {
	if c.built {
		return
	}
	c.built = true
	rng := rand.New(rand.NewSource(c.Seed))
	horizon := c.Horizon
	if horizon <= 0 {
		horizon = 24 * 3600
	}
	meanSunny := c.MeanSunny
	if meanSunny <= 0 {
		meanSunny = 300
	}
	meanCloudy := c.MeanCloudy
	if meanCloudy <= 0 {
		meanCloudy = 60
	}
	t := rng.ExpFloat64() * meanSunny
	for t < horizon {
		d := rng.ExpFloat64() * meanCloudy
		c.schedule = append(c.schedule, shadow{start: t, end: t + d})
		t += d + rng.ExpFloat64()*meanSunny
	}
}

func (c *CloudySolar) Power(t float64) float64 {
	c.build()
	p := c.Base.Power(t)
	i := sort.Search(len(c.schedule), func(i int) bool { return c.schedule[i].end > t })
	if i < len(c.schedule) && c.schedule[i].start <= t {
		att := c.Attenuation
		if att < 0 {
			att = 0
		}
		return p * att
	}
	return p
}

func (c *CloudySolar) Name() string { return "cloudy-" + c.Base.Name() }

// Shadowed reports whether time t falls inside a cloud shadow (tests and
// re-profiling experiments use this).
func (c *CloudySolar) Shadowed(t float64) bool {
	c.build()
	i := sort.Search(len(c.schedule), func(i int) bool { return c.schedule[i].end > t })
	return i < len(c.schedule) && c.schedule[i].start <= t
}

// RFBurst models radio-frequency harvesting: short, strong bursts (a reader
// passing by) over a weak ambient floor.
type RFBurst struct {
	Floor    float64 // ambient power (W)
	Burst    float64 // power during a burst (W)
	Period   float64 // burst repetition period (s)
	Duration float64 // burst length (s)
}

func (r RFBurst) Power(t float64) float64 {
	if t < 0 || r.Period <= 0 {
		return r.Floor
	}
	if math.Mod(t, r.Period) < r.Duration {
		return r.Burst
	}
	return r.Floor
}

func (r RFBurst) Name() string { return fmt.Sprintf("rf-%gW-burst", r.Burst) }

// TracePoint is one sample of a recorded harvest trace.
type TracePoint struct {
	T float64 // seconds
	P float64 // watts
}

// Trace plays back a recorded harvest time series with step interpolation
// (the Ekho-style repeatable-trace methodology the paper cites).
type Trace struct {
	ID     string
	Points []TracePoint // ascending by T
}

// NewTrace validates and builds a playback source.
func NewTrace(id string, points []TracePoint) (*Trace, error) {
	if len(points) == 0 {
		return nil, errors.New("harvester: empty trace")
	}
	for i := range points {
		if points[i].P < 0 {
			return nil, fmt.Errorf("harvester: negative power at point %d", i)
		}
		if i > 0 && points[i].T <= points[i-1].T {
			return nil, fmt.Errorf("harvester: non-ascending time at point %d", i)
		}
	}
	return &Trace{ID: id, Points: points}, nil
}

func (tr *Trace) Power(t float64) float64 {
	ps := tr.Points
	if t < ps[0].T {
		return 0
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].T > t })
	return ps[i-1].P
}

func (tr *Trace) Name() string { return tr.ID }

// Mean integrates a source's average power over [0, horizon] at the given
// resolution (s). Useful for feasibility budgeting.
func Mean(s Source, horizon, dt float64) float64 {
	if horizon <= 0 || dt <= 0 {
		return 0
	}
	n := int(horizon / dt)
	if n == 0 {
		n = 1
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Power(float64(i) * dt)
	}
	return sum / float64(n)
}

// ChangeDetector implements the Section V-B re-profiling trigger: it
// watches harvested power and reports when the level moves more than
// Threshold (relative) away from the reference established at the last
// trigger (or construction).
type ChangeDetector struct {
	// Threshold is the relative change that triggers, e.g. 0.5 for ±50 %.
	Threshold float64
	ref       float64
	armed     bool
}

// NewChangeDetector builds a detector referenced to the initial power.
func NewChangeDetector(threshold, initial float64) *ChangeDetector {
	return &ChangeDetector{Threshold: threshold, ref: initial, armed: true}
}

// Observe feeds a power sample; it returns true when the change exceeds the
// threshold, re-referencing to the new level (so each regime change
// triggers once).
func (d *ChangeDetector) Observe(p float64) bool {
	if !d.armed {
		d.ref = p
		d.armed = true
		return false
	}
	base := math.Max(d.ref, 1e-12)
	if math.Abs(p-d.ref)/base > d.Threshold {
		d.ref = p
		return true
	}
	return false
}

// Reference returns the current reference level.
func (d *ChangeDetector) Reference() float64 { return d.ref }

// Perturbed wraps a base source with a time-indexed power transform. It is
// the composition point for supply-side fault injection: dropout windows,
// sag, or any custom disturbance layered over an unmodified base source.
type Perturbed struct {
	Base Source
	// F maps (time, base power) to the delivered power. A nil F is the
	// identity.
	F func(t, p float64) float64
	// Label is appended to the base name for reports; defaults to
	// "perturbed".
	Label string
}

// Power applies the transform to the base source's output.
func (p Perturbed) Power(t float64) float64 {
	pw := p.Base.Power(t)
	if p.F == nil {
		return pw
	}
	return p.F(t, pw)
}

// Name identifies the wrapped source.
func (p Perturbed) Name() string {
	label := p.Label
	if label == "" {
		label = "perturbed"
	}
	return p.Base.Name() + "+" + label
}

package harvester

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := Constant{P: 2.5e-3}
	if c.Power(10) != 2.5e-3 {
		t.Error("constant power wrong")
	}
	if c.Power(-1) != 0 {
		t.Error("negative time should yield 0")
	}
	if c.Name() != "constant-0.0025W" {
		t.Errorf("name = %q", c.Name())
	}
	if (Constant{P: 1, ID: "bench"}).Name() != "bench" {
		t.Error("custom name ignored")
	}
}

func TestSolarShape(t *testing.T) {
	s := NewSolar(10e-3)
	// Night is dark.
	if s.Power(0) != 0 || s.Power(3*3600) != 0 || s.Power(22*3600) != 0 {
		t.Error("night should be dark")
	}
	// Noon peaks.
	noon := s.Power(12 * 3600)
	if math.Abs(noon-10e-3) > 1e-9 {
		t.Errorf("noon power = %g", noon)
	}
	// Morning rises monotonically toward noon.
	if !(s.Power(8*3600) < s.Power(10*3600) && s.Power(10*3600) < noon) {
		t.Error("morning should rise")
	}
	// Sunrise/sunset edges are ~zero.
	if s.Power(6*3600+1) > 1e-6 || s.Power(18*3600-1) > 1e-6 {
		t.Error("edges should be near zero")
	}
	// Periodic: next day repeats.
	if math.Abs(s.Power(12*3600)-s.Power(36*3600)) > 1e-12 {
		t.Error("diurnal cycle should repeat")
	}
	if s.Power(-5) != 0 {
		t.Error("negative time should be dark")
	}
}

func TestSolarProperty(t *testing.T) {
	s := NewSolar(5e-3)
	f := func(raw float64) bool {
		tt := math.Abs(math.Mod(raw, 48*3600))
		p := s.Power(tt)
		return p >= 0 && p <= 5e-3+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloudySolar(t *testing.T) {
	c := &CloudySolar{
		Base:        Constant{P: 10e-3},
		Attenuation: 0.2,
		MeanSunny:   100,
		MeanCloudy:  50,
		Horizon:     10000,
		Seed:        1,
	}
	// Deterministic.
	c2 := &CloudySolar{Base: Constant{P: 10e-3}, Attenuation: 0.2, MeanSunny: 100, MeanCloudy: 50, Horizon: 10000, Seed: 1}
	sawShadow, sawSun := false, false
	for tt := 0.0; tt < 10000; tt += 10 {
		p1, p2 := c.Power(tt), c2.Power(tt)
		if p1 != p2 {
			t.Fatal("cloudy source not deterministic")
		}
		if c.Shadowed(tt) {
			sawShadow = true
			if math.Abs(p1-2e-3) > 1e-12 {
				t.Fatalf("shadowed power = %g, want 0.002", p1)
			}
		} else {
			sawSun = true
			if math.Abs(p1-10e-3) > 1e-12 {
				t.Fatalf("sunny power = %g", p1)
			}
		}
	}
	if !sawShadow || !sawSun {
		t.Error("schedule should include both regimes")
	}
	if c.Name() != "cloudy-constant-0.01W" {
		t.Errorf("name = %q", c.Name())
	}
	// Negative attenuation clamps to zero.
	neg := &CloudySolar{Base: Constant{P: 1}, Attenuation: -1, MeanSunny: 1, MeanCloudy: 1e6, Horizon: 100, Seed: 2}
	for tt := 0.0; tt < 100; tt += 1 {
		if neg.Shadowed(tt) && neg.Power(tt) != 0 {
			t.Fatal("negative attenuation should clamp to 0")
		}
	}
}

func TestRFBurst(t *testing.T) {
	r := RFBurst{Floor: 50e-6, Burst: 20e-3, Period: 10, Duration: 0.5}
	if r.Power(0.2) != 20e-3 {
		t.Error("burst power wrong")
	}
	if r.Power(5) != 50e-6 {
		t.Error("floor power wrong")
	}
	if r.Power(10.1) != 20e-3 {
		t.Error("burst should repeat")
	}
	if (RFBurst{Floor: 1e-6}).Power(5) != 1e-6 {
		t.Error("degenerate period should return floor")
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func TestTrace(t *testing.T) {
	tr, err := NewTrace("field", []TracePoint{{0, 1e-3}, {10, 5e-3}, {20, 2e-3}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Power(5) != 1e-3 {
		t.Error("step interpolation wrong")
	}
	if tr.Power(10) != 5e-3 {
		t.Error("exact point wrong")
	}
	if tr.Power(100) != 2e-3 {
		t.Error("past end should hold last value")
	}
	if tr.Power(-1) != 0 {
		t.Error("before start should be 0")
	}
	if tr.Name() != "field" {
		t.Error("name wrong")
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace("x", nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace("x", []TracePoint{{0, -1}}); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := NewTrace("x", []TracePoint{{0, 1}, {0, 2}}); err == nil {
		t.Error("non-ascending time accepted")
	}
}

func TestMean(t *testing.T) {
	if got := Mean(Constant{P: 4e-3}, 100, 0.1); math.Abs(got-4e-3) > 1e-12 {
		t.Errorf("mean of constant = %g", got)
	}
	// Solar day mean is well below peak.
	s := NewSolar(10e-3)
	m := Mean(s, 24*3600, 60)
	if !(m > 1e-3 && m < 6e-3) {
		t.Errorf("solar daily mean = %g", m)
	}
	if Mean(Constant{P: 1}, 0, 1) != 0 || Mean(Constant{P: 1}, 1, 0) != 0 {
		t.Error("degenerate mean should be 0")
	}
}

func TestChangeDetector(t *testing.T) {
	d := NewChangeDetector(0.5, 2e-3)
	// Small drift: no trigger.
	if d.Observe(2.4e-3) {
		t.Error("20% drift should not trigger at 50% threshold")
	}
	// Big drop: trigger and re-reference.
	if !d.Observe(0.5e-3) {
		t.Error("75% drop should trigger")
	}
	if d.Reference() != 0.5e-3 {
		t.Error("reference not updated")
	}
	// Stable at the new level: no trigger.
	if d.Observe(0.55e-3) {
		t.Error("stable new level should not re-trigger")
	}
	// Recovery triggers again.
	if !d.Observe(2e-3) {
		t.Error("recovery should trigger")
	}
}

func TestChangeDetectorFromZero(t *testing.T) {
	d := NewChangeDetector(0.5, 0)
	// Any nonzero power is an infinite relative change from zero.
	if !d.Observe(1e-3) {
		t.Error("power appearing from zero should trigger")
	}
}

package capacitor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBranchValidate(t *testing.T) {
	good := Branch{Name: "b", C: 45e-3, ESR: 1.5, Voltage: 2.4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid branch rejected: %v", err)
	}
	bad := []Branch{
		{C: 0},
		{C: -1},
		{C: 1, ESR: -0.5},
		{C: 1, Leakage: -1e-9},
		{C: 1, Voltage: -0.1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad branch %d accepted", i)
		}
	}
}

func TestBranchDischargeCharge(t *testing.T) {
	b := Branch{C: 1e-3, Voltage: 2.0}
	b.Discharge(1e-3, 1.0) // 1 mA for 1 s from 1 mF: dV = 1 V
	if !almost(b.Voltage, 1.0, 1e-12) {
		t.Fatalf("discharge: got %g, want 1.0", b.Voltage)
	}
	b.Charge(0.5e-3, 1.0)
	if !almost(b.Voltage, 1.5, 1e-12) {
		t.Fatalf("charge: got %g, want 1.5", b.Voltage)
	}
}

func TestBranchDischargeFloorsAtZero(t *testing.T) {
	b := Branch{C: 1e-6, Voltage: 0.1}
	b.Discharge(1, 1) // massive overdraw
	if b.Voltage != 0 {
		t.Fatalf("voltage went negative: %g", b.Voltage)
	}
}

func TestBranchLeakage(t *testing.T) {
	b := Branch{C: 1e-3, Voltage: 2.0, Leakage: 1e-6}
	b.Discharge(0, 10) // leakage only: dV = 1e-6*10/1e-3 = 10 mV
	if !almost(b.Voltage, 1.99, 1e-9) {
		t.Fatalf("leakage discharge: got %g, want 1.99", b.Voltage)
	}
}

func TestBranchEnergy(t *testing.T) {
	b := Branch{C: 45e-3, Voltage: 2.0}
	if !almost(b.Energy(), 0.09, 1e-12) {
		t.Fatalf("energy: got %g, want 0.09", b.Energy())
	}
}

func TestNetworkBasics(t *testing.T) {
	main := &Branch{Name: "main", C: 45e-3, ESR: 1.5, Voltage: 2.4}
	dec := &Branch{Name: "decoupling", C: 400e-6, ESR: 0.05, Voltage: 2.2}
	n, err := NewNetwork(main, dec)
	if err != nil {
		t.Fatal(err)
	}
	if n.Main() != main {
		t.Error("Main() should return the first branch")
	}
	if !almost(n.TotalCapacitance(), 45e-3+400e-6, 1e-15) {
		t.Error("TotalCapacitance wrong")
	}
	if got := n.OpenCircuitVoltage(); got != 2.4 {
		t.Errorf("OpenCircuitVoltage = %g, want 2.4", got)
	}
	wantE := 0.5*45e-3*2.4*2.4 + 0.5*400e-6*2.2*2.2
	if !almost(n.TotalEnergy(), wantE, 1e-12) {
		t.Errorf("TotalEnergy = %g, want %g", n.TotalEnergy(), wantE)
	}
	n.SetAll(1.0)
	if main.Voltage != 1.0 || dec.Voltage != 1.0 {
		t.Error("SetAll did not propagate")
	}
}

func TestNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := NewNetwork(&Branch{C: -1}); err == nil {
		t.Error("invalid branch accepted")
	}
}

func TestNetworkCloneIsolation(t *testing.T) {
	n, _ := NewNetwork(&Branch{Name: "m", C: 1e-3, Voltage: 2.0})
	c := n.Clone()
	c.Main().Voltage = 0.5
	if n.Main().Voltage != 2.0 {
		t.Error("Clone shares branch state with original")
	}
}

func TestESRCurveInterpolation(t *testing.T) {
	c, err := NewESRCurve(
		ESRPoint{Hz: 1, Ohm: 10},
		ESRPoint{Hz: 100, Ohm: 4},
		ESRPoint{Hz: 10000, Ohm: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Clamping outside the range.
	if c.At(0.1) != 10 {
		t.Errorf("below range: got %g, want 10", c.At(0.1))
	}
	if c.At(1e6) != 1 {
		t.Errorf("above range: got %g, want 1", c.At(1e6))
	}
	// Exact points.
	if c.At(100) != 4 {
		t.Errorf("exact point: got %g, want 4", c.At(100))
	}
	// Log-interpolated midpoint between 1 Hz and 100 Hz is 10 Hz.
	if got := c.At(10); !almost(got, 7, 1e-9) {
		t.Errorf("midpoint: got %g, want 7", got)
	}
}

func TestESRCurveMonotoneOnMonotoneData(t *testing.T) {
	c, err := NewESRCurve(
		ESRPoint{Hz: 1, Ohm: 10},
		ESRPoint{Hz: 10, Ohm: 8},
		ESRPoint{Hz: 100, Ohm: 4},
		ESRPoint{Hz: 1000, Ohm: 2},
		ESRPoint{Hz: 10000, Ohm: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 1e5)) + 0.1
		b := math.Abs(math.Mod(bRaw, 1e5)) + 0.1
		if a > b {
			a, b = b, a
		}
		return c.At(a) >= c.At(b) // ESR must not increase with frequency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestESRCurveErrors(t *testing.T) {
	if _, err := NewESRCurve(); err == nil {
		t.Error("empty curve accepted")
	}
	if _, err := NewESRCurve(ESRPoint{Hz: 0, Ohm: 1}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := NewESRCurve(ESRPoint{Hz: 1, Ohm: -1}); err == nil {
		t.Error("negative ESR accepted")
	}
	if _, err := NewESRCurve(ESRPoint{Hz: 5, Ohm: 1}, ESRPoint{Hz: 5, Ohm: 2}); err == nil {
		t.Error("duplicate frequency accepted")
	}
}

func TestESRForPulseWidth(t *testing.T) {
	c, _ := NewESRCurve(
		ESRPoint{Hz: 1, Ohm: 10},
		ESRPoint{Hz: 10000, Ohm: 1},
	)
	// 100 ms pulse → 5 Hz; must see near-LF ESR.
	slow := c.ForPulseWidth(100e-3)
	// 1 ms pulse → 500 Hz; must see lower ESR.
	fast := c.ForPulseWidth(1e-3)
	if !(slow > fast) {
		t.Errorf("slow pulse ESR (%g) should exceed fast pulse ESR (%g)", slow, fast)
	}
	if got := c.ForPulseWidth(0); got != 1 {
		t.Errorf("zero width should clamp to HF limit, got %g", got)
	}
}

func TestFlatCurve(t *testing.T) {
	c := Flat(4.7)
	for _, hz := range []float64{0.1, 1, 1000, 1e6} {
		if c.At(hz) != 4.7 {
			t.Fatalf("Flat curve not flat at %g Hz", hz)
		}
	}
}

func TestAging(t *testing.T) {
	fresh := Aging{LifeFraction: 0}
	if fresh.CapacitanceFactor() != 1 || fresh.ESRFactor() != 1 || fresh.Dead() {
		t.Error("fresh aging factors wrong")
	}
	eol := Aging{LifeFraction: 1}
	if !almost(eol.CapacitanceFactor(), 0.8, 1e-12) {
		t.Errorf("EOL capacitance factor = %g, want 0.8", eol.CapacitanceFactor())
	}
	if !almost(eol.ESRFactor(), 2.0, 1e-12) {
		t.Errorf("EOL ESR factor = %g, want 2.0", eol.ESRFactor())
	}
	if !eol.Dead() {
		t.Error("EOL should be dead")
	}
	// Clamped outside [0,1].
	over := Aging{LifeFraction: 5}
	if over.ESRFactor() != 2 || over.CapacitanceFactor() != 0.8 {
		t.Error("aging factors must clamp")
	}
	under := Aging{LifeFraction: -1}
	if under.ESRFactor() != 1 || under.CapacitanceFactor() != 1 {
		t.Error("negative life fraction must clamp to fresh")
	}
}

func TestAgingApply(t *testing.T) {
	b := Branch{C: 45e-3, ESR: 1.5}
	aged := Aging{LifeFraction: 0.5}.Apply(b)
	if !almost(aged.C, 45e-3*0.9, 1e-12) {
		t.Errorf("aged C = %g", aged.C)
	}
	if !almost(aged.ESR, 1.5*1.5, 1e-12) {
		t.Errorf("aged ESR = %g", aged.ESR)
	}
	if b.C != 45e-3 {
		t.Error("Apply must not mutate the input")
	}
}

func TestAssembleBank(t *testing.T) {
	p := Part{PartNumber: "CPX3225A752D", Tech: Supercap, C: 7.5e-3, ESR: 9, Volume: 7.0, DCL: 3.3e-9}
	b, err := AssembleBank(p, 45e-3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != 6 {
		t.Fatalf("45 mF from 7.5 mF parts should take 6 parts, got %d", b.Count)
	}
	if !almost(b.C(), 45e-3, 1e-12) {
		t.Errorf("bank C = %g", b.C())
	}
	if !almost(b.ESR(), 1.5, 1e-12) {
		t.Errorf("bank ESR = %g, want 1.5 (9Ω/6)", b.ESR())
	}
	if !almost(b.Volume(), 42, 1e-9) {
		t.Errorf("bank volume = %g", b.Volume())
	}
	if !almost(b.DCL(), 19.8e-9, 1e-15) {
		t.Errorf("bank DCL = %g, want ~20 nA", b.DCL())
	}
	br := b.Branch("bank", 2.4)
	if br.C != b.C() || br.ESR != b.ESR() || br.Voltage != 2.4 {
		t.Error("Branch conversion mismatched")
	}
}

func TestAssembleBankErrors(t *testing.T) {
	if _, err := AssembleBank(Part{C: 0}, 45e-3); err == nil {
		t.Error("zero-capacitance part accepted")
	}
	if _, err := AssembleBank(Part{C: 1e-3}, 0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestBankProperties(t *testing.T) {
	f := func(cRaw, targetRaw float64) bool {
		c := math.Abs(math.Mod(cRaw, 0.01)) + 1e-6
		target := math.Abs(math.Mod(targetRaw, 0.1)) + 1e-6
		p := Part{C: c, ESR: 2, Volume: 3, DCL: 1e-9}
		b, err := AssembleBank(p, target)
		if err != nil {
			return false
		}
		// Bank must meet the target, and removing one part must not.
		if b.C() < target-1e-15 {
			return false
		}
		if b.Count > 1 && p.C*float64(b.Count-1) >= target {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTechnologyString(t *testing.T) {
	names := map[Technology]string{
		Ceramic:      "ceramic",
		Tantalum:     "tantalum",
		Electrolytic: "electrolytic",
		Supercap:     "supercapacitor",
	}
	for tech, want := range names {
		if tech.String() != want {
			t.Errorf("%d.String() = %q, want %q", tech, tech.String(), want)
		}
	}
	if Technology(99).String() == "" {
		t.Error("unknown technology should still render")
	}
	if len(Technologies()) != int(numTechnologies) {
		t.Error("Technologies() out of sync")
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

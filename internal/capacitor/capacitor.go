// Package capacitor models the energy-storage side of an energy-harvesting
// power system: capacitors with equivalent series resistance (ESR),
// frequency-dependent ESR curves, multi-branch storage networks (main bank +
// decoupling capacitance + slow charge-redistribution branches), capacitor
// bank assembly from discrete parts, and lifetime aging.
//
// The central phenomenon Culpeo addresses — the load-dependent terminal
// voltage drop V_delta = I·ESR that rebounds when the load is removed — falls
// out of the Branch model here combined with the nodal solver in package
// powersys.
package capacitor

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Branch is one storage element connected to the shared terminal node: an
// ideal capacitor C behind a series resistance ESR. Voltage is the current
// open-circuit (internal) voltage of the ideal capacitor.
type Branch struct {
	Name    string
	C       float64 // farads
	ESR     float64 // ohms, series resistance between the cap and the node
	Leakage float64 // amperes of intrinsic DC leakage (discharges C)
	Voltage float64 // volts, present open-circuit voltage
}

// Validate reports whether the branch parameters are physical.
func (b *Branch) Validate() error {
	switch {
	case b.C <= 0:
		return fmt.Errorf("capacitor: branch %q: non-positive capacitance %g", b.Name, b.C)
	case b.ESR < 0:
		return fmt.Errorf("capacitor: branch %q: negative ESR %g", b.Name, b.ESR)
	case b.Leakage < 0:
		return fmt.Errorf("capacitor: branch %q: negative leakage %g", b.Name, b.Leakage)
	case b.Voltage < 0:
		return fmt.Errorf("capacitor: branch %q: negative voltage %g", b.Name, b.Voltage)
	}
	return nil
}

// Energy returns the energy stored in the branch, ½CV².
func (b *Branch) Energy() float64 { return 0.5 * b.C * b.Voltage * b.Voltage }

// Discharge removes charge corresponding to current i flowing out of the
// branch for dt seconds (plus intrinsic leakage). Voltage never goes below 0.
func (b *Branch) Discharge(i, dt float64) {
	b.Voltage -= (i + b.Leakage) * dt / b.C
	if b.Voltage < 0 {
		b.Voltage = 0
	}
}

// Charge adds charge from current i flowing into the branch for dt seconds.
// Leakage still applies.
func (b *Branch) Charge(i, dt float64) { b.Discharge(-i, dt) }

// Network is a set of storage branches sharing one terminal node. Branch 0
// is by convention the main energy buffer; later branches model decoupling
// capacitance or supercapacitor charge-redistribution arms.
type Network struct {
	Branches []*Branch
}

// NewNetwork builds a network, validating every branch.
func NewNetwork(branches ...*Branch) (*Network, error) {
	if len(branches) == 0 {
		return nil, errors.New("capacitor: network needs at least one branch")
	}
	for _, b := range branches {
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	return &Network{Branches: branches}, nil
}

// Main returns the primary energy buffer branch.
func (n *Network) Main() *Branch { return n.Branches[0] }

// TotalEnergy sums stored energy across branches.
func (n *Network) TotalEnergy() float64 {
	var e float64
	for _, b := range n.Branches {
		e += b.Energy()
	}
	return e
}

// TotalCapacitance sums capacitance across branches (they are in parallel at
// the terminal node, so capacitances add for slow signals).
func (n *Network) TotalCapacitance() float64 {
	var c float64
	for _, b := range n.Branches {
		c += b.C
	}
	return c
}

// OpenCircuitVoltage returns the terminal voltage with no load: the
// charge-weighted equilibrium if the branches were allowed to equalize would
// differ, but instantaneously with zero current each branch shows its own
// voltage through zero drop; the terminal sits at the value the nodal
// equation yields with I_load = 0. For reporting we return the maximum branch
// voltage, which equals the no-load terminal voltage when redistribution
// currents are negligible (high inter-branch resistance) and is within the
// redistribution band otherwise.
func (n *Network) OpenCircuitVoltage() float64 {
	var v float64
	for _, b := range n.Branches {
		if b.Voltage > v {
			v = b.Voltage
		}
	}
	return v
}

// SetAll forces every branch to voltage v (e.g. "charge fully to V_high"
// in the test harness).
func (n *Network) SetAll(v float64) {
	for _, b := range n.Branches {
		b.Voltage = v
	}
}

// Clone deep-copies the network, so simulations can be re-run from a
// snapshot without mutating the original.
func (n *Network) Clone() *Network {
	out := &Network{Branches: make([]*Branch, len(n.Branches))}
	for i, b := range n.Branches {
		cp := *b
		out.Branches[i] = &cp
	}
	return out
}

// ESRPoint is one sample of an ESR-versus-frequency characterization.
type ESRPoint struct {
	Hz  float64
	Ohm float64
}

// ESRCurve is a measured ESR-versus-frequency characteristic for a power
// system (Section IV-B: datasheet ESR values are too inaccurate; Culpeo-PG
// derives a curve by direct measurement). ESR falls with frequency for
// supercapacitors: slow loads see the full electrode resistance, fast pulses
// see only the high-frequency series component.
type ESRCurve struct {
	points []ESRPoint // sorted ascending by Hz
}

// NewESRCurve builds a curve from points (any order). At least one point is
// required; frequencies must be positive and distinct.
func NewESRCurve(points ...ESRPoint) (*ESRCurve, error) {
	if len(points) == 0 {
		return nil, errors.New("capacitor: ESR curve needs at least one point")
	}
	ps := make([]ESRPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Hz < ps[j].Hz })
	for i, p := range ps {
		if p.Hz <= 0 {
			return nil, fmt.Errorf("capacitor: ESR point %d: non-positive frequency %g", i, p.Hz)
		}
		if p.Ohm < 0 {
			return nil, fmt.Errorf("capacitor: ESR point %d: negative ESR %g", i, p.Ohm)
		}
		if i > 0 && p.Hz == ps[i-1].Hz {
			return nil, fmt.Errorf("capacitor: duplicate ESR frequency %g", p.Hz)
		}
	}
	return &ESRCurve{points: ps}, nil
}

// Points returns the curve's measurement points, sorted ascending by
// frequency. The slice is a copy; curves compare and hash by value (two
// independently built curves with the same points are the same
// characteristic — see core.PowerModel.Fingerprint).
func (c *ESRCurve) Points() []ESRPoint {
	return append([]ESRPoint(nil), c.points...)
}

// At returns the ESR at frequency hz using log-frequency linear
// interpolation, clamping outside the measured range.
func (c *ESRCurve) At(hz float64) float64 {
	ps := c.points
	if hz <= ps[0].Hz {
		return ps[0].Ohm
	}
	last := ps[len(ps)-1]
	if hz >= last.Hz {
		return last.Ohm
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Hz >= hz })
	lo, hi := ps[i-1], ps[i]
	t := (math.Log(hz) - math.Log(lo.Hz)) / (math.Log(hi.Hz) - math.Log(lo.Hz))
	return lo.Ohm + (hi.Ohm-lo.Ohm)*t
}

// ForPulseWidth selects the representative ESR for a load whose widest
// current pulse lasts w seconds (Section V-A: Culpeo-PG uses the width of
// the largest current pulse, excluding high-frequency noise, to choose an
// ESR value from the curve). The corresponding frequency is 1/(2w) — a pulse
// of width w is half a period of a square wave at that frequency.
func (c *ESRCurve) ForPulseWidth(w float64) float64 {
	if w <= 0 {
		return c.points[len(c.points)-1].Ohm // infinitely fast: HF limit
	}
	return c.At(1 / (2 * w))
}

// Flat returns a frequency-independent curve, handy for ideal components in
// tests.
func Flat(ohm float64) *ESRCurve {
	c, err := NewESRCurve(ESRPoint{Hz: 1, Ohm: ohm})
	if err != nil {
		panic(err) // unreachable: constant inputs are valid
	}
	return c
}

// Aging models supercapacitor wear (Section IV-C: over the device lifetime
// capacitance can fade to 80 % of nominal and ESR can double, beyond which
// the capacitor is considered dead).
type Aging struct {
	// Fraction of lifetime consumed, in [0, 1]. 0 = fresh, 1 = end of life.
	LifeFraction float64
}

// CapacitanceFactor returns the multiplier on nominal capacitance
// (1.0 fresh → 0.8 at end of life, linear).
func (a Aging) CapacitanceFactor() float64 {
	f := clamp01(a.LifeFraction)
	return 1 - 0.2*f
}

// ESRFactor returns the multiplier on nominal ESR (1.0 fresh → 2.0 at end of
// life, linear).
func (a Aging) ESRFactor() float64 {
	f := clamp01(a.LifeFraction)
	return 1 + f
}

// Dead reports whether the capacitor has exceeded its service limits.
func (a Aging) Dead() bool { return a.LifeFraction >= 1 }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Apply returns a copy of the branch with aging applied.
func (a Aging) Apply(b Branch) Branch {
	b.C *= a.CapacitanceFactor()
	b.ESR *= a.ESRFactor()
	return b
}

// ApplyNetwork ages every branch of the network in place. Callers that need
// the fresh network preserved should Clone it first.
func (a Aging) ApplyNetwork(n *Network) {
	for _, b := range n.Branches {
		aged := a.Apply(*b)
		b.C, b.ESR = aged.C, aged.ESR
	}
}

// SupercapBranches models a supercapacitor's frequency-dependent impedance
// as two storage branches sharing the terminal node: the bulk capacitance
// behind the low-frequency ESR, plus a small fast branch behind the
// high-frequency ESR. Short pulses draw from both branches in parallel
// (low effective ESR); sustained loads exhaust the fast branch and see the
// bulk resistance — which is exactly the ESR-versus-frequency behaviour
// impedance analyzers measure on real supercapacitors.
//
// c is the total capacitance; fastFraction (e.g. 0.05) is the share held
// in the fast branch; rLF and rHF are the low/high-frequency ESRs
// (rLF > rHF); v is the initial voltage.
func SupercapBranches(name string, c, rLF, rHF, fastFraction, v float64) []*Branch {
	if fastFraction < 0 {
		fastFraction = 0
	}
	if fastFraction > 0.5 {
		fastFraction = 0.5
	}
	bulk := &Branch{Name: name + "-bulk", C: c * (1 - fastFraction), ESR: rLF, Voltage: v}
	if fastFraction == 0 {
		return []*Branch{bulk}
	}
	fast := &Branch{Name: name + "-fast", C: c * fastFraction, ESR: rHF, Voltage: v}
	return []*Branch{bulk, fast}
}

package capacitor

import (
	"fmt"
	"math"
)

// Part describes a discrete capacitor part as found in distributor metadata
// (Section II-B / Figure 3): capacitance, ESR, physical volume, intrinsic DC
// leakage, and technology family.
type Part struct {
	PartNumber string
	Tech       Technology
	C          float64 // farads
	ESR        float64 // ohms
	Volume     float64 // cubic millimetres
	DCL        float64 // amperes of DC leakage
	MaxVoltage float64 // volts
}

// Technology is a capacitor technology family.
type Technology int

const (
	Ceramic Technology = iota
	Tantalum
	Electrolytic
	Supercap
	numTechnologies
)

// Technologies lists every technology in display order.
func Technologies() []Technology {
	return []Technology{Ceramic, Tantalum, Electrolytic, Supercap}
}

func (t Technology) String() string {
	switch t {
	case Ceramic:
		return "ceramic"
	case Tantalum:
		return "tantalum"
	case Electrolytic:
		return "electrolytic"
	case Supercap:
		return "supercapacitor"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Bank is an energy buffer assembled from count identical parts in parallel.
// Parallel assembly: capacitances and leakages add, ESR divides, volume
// multiplies.
type Bank struct {
	Part  Part
	Count int
}

// AssembleBank returns the smallest parallel bank of the given part reaching
// at least targetC farads.
func AssembleBank(p Part, targetC float64) (Bank, error) {
	if p.C <= 0 {
		return Bank{}, fmt.Errorf("capacitor: part %q has non-positive capacitance", p.PartNumber)
	}
	if targetC <= 0 {
		return Bank{}, fmt.Errorf("capacitor: non-positive target capacitance %g", targetC)
	}
	n := int(math.Ceil(targetC / p.C))
	if n < 1 {
		n = 1
	}
	return Bank{Part: p, Count: n}, nil
}

// C returns the bank's total capacitance.
func (b Bank) C() float64 { return b.Part.C * float64(b.Count) }

// ESR returns the bank's net ESR (parallel parts).
func (b Bank) ESR() float64 {
	if b.Count == 0 {
		return math.Inf(1)
	}
	return b.Part.ESR / float64(b.Count)
}

// Volume returns the bank's total volume in mm³.
func (b Bank) Volume() float64 { return b.Part.Volume * float64(b.Count) }

// DCL returns the bank's total DC leakage in amperes.
func (b Bank) DCL() float64 { return b.Part.DCL * float64(b.Count) }

// Branch converts the bank to a storage branch at the given initial voltage.
func (b Bank) Branch(name string, v float64) *Branch {
	return &Branch{Name: name, C: b.C(), ESR: b.ESR(), Leakage: b.DCL(), Voltage: v}
}

// String summarizes the bank for reports.
func (b Bank) String() string {
	return fmt.Sprintf("%d× %s (%s): C=%gF ESR=%gΩ vol=%gmm³ DCL=%gA",
		b.Count, b.Part.PartNumber, b.Part.Tech, b.C(), b.ESR(), b.Volume(), b.DCL())
}

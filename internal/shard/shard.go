// Package shard turns "millions of users" into a routing problem: a
// topology-aware tier that spreads culpeod traffic over N shared-nothing
// shards by rendezvous (highest-random-weight) hashing on the V_safe cache
// key — (PowerModel.Fingerprint() × TraceFingerprint()), the exact pair
// core.VSafeCache memoizes under (serve.Fingerprints is the shared
// resolution, so route key and cache key cannot drift apart). Every shard
// then owns a disjoint slice of the hot set, each slice fits a
// shard-sized LRU, and no invalidation protocol is needed because the key
// hashes every input that influences the estimate.
//
// Rendezvous rather than a hash ring: with N in the single digits to low
// hundreds, scoring all N candidates per request (a few FNV rounds each)
// is cheaper than maintaining a ring with enough virtual nodes to balance,
// and it gives the failover order for free — the rank list *is* the
// preference list, so "next-highest candidate" is well-defined and stable
// without ring walk edge cases. Removing a shard only remaps the keys that
// ranked it first (minimal disruption, tested), which is what keeps the
// other shards' caches warm through a kill.
//
// The pieces:
//
//   - Key / ObservationKey: route-key derivation from the fingerprints;
//   - Rank: the HRW preference order of a key over a shard set;
//   - Topology: the versioned shard set (epoch counter, live Join/Leave);
//   - Router (router.go): the failover engine over one client.Pool per
//     shard;
//   - LoadTest / Scaling (loadtest.go): the self-hosted throughput rig
//     that records 1→4→8 shard scaling.
package shard

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"sync"
)

// 64-bit FNV-1a, mirroring internal/core's fingerprint arithmetic (core
// keeps its helpers unexported; the constants are the algorithm).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Key combines the two cache-fingerprint halves into one route key. The
// pair is hashed rather than XORed so (a, b) and (b, a) route
// independently.
func Key(model, trace uint64) uint64 {
	h := hashUint64(fnvOffset64, model)
	return hashUint64(h, trace)
}

// ObservationKey is the route key for /v1/vsafe-r, whose load half is
// three observed voltages rather than a trace. Culpeo-R estimates are not
// memoized, so any stable key works; hashing the observation keeps
// repeated telemetry from one device on one shard.
func ObservationKey(model uint64, vStart, vMin, vFinal float64) uint64 {
	h := hashUint64(fnvOffset64, model)
	h = hashUint64(h, math.Float64bits(vStart))
	h = hashUint64(h, math.Float64bits(vMin))
	return hashUint64(h, math.Float64bits(vFinal))
}

// Shard is one culpeod node as the router sees it.
type Shard struct {
	// ID is the stable shard name ("s0", "s1", ...) — what the node
	// advertises as shard_id on /healthz and what event logs cite. Scoring
	// uses the ID, not the URL, so a shard that rejoins at a new address
	// keeps its slice of the keyspace.
	ID string
	// URL is the node's base URL ("http://127.0.0.1:9000").
	URL string
}

// score is the HRW weight of key on shard id: hash(id) folded with key.
// Each (key, shard) pair gets an independent uniform draw, so the argmax
// spreads keys evenly and removing one shard leaves every other pair's
// score — and therefore every other key's argmax — untouched.
func score(key uint64, id string) uint64 {
	return hashUint64(hashString(fnvOffset64, id), key)
}

// Rank returns the shards ordered by descending rendezvous score for key:
// Rank(...)[0] owns the key, Rank(...)[1] is the first failover
// candidate, and so on. Ties (vanishingly rare) break by ID so the order
// is total.
func Rank(key uint64, shards []Shard) []Shard {
	out := make([]Shard, len(shards))
	copy(out, shards)
	sort.Slice(out, func(i, j int) bool {
		si, sj := score(key, out[i].ID), score(key, out[j].ID)
		if si != sj {
			return si > sj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Owner returns just Rank(key, shards)[0] without building the full
// permutation — the common case for metrics and tests.
func Owner(key uint64, shards []Shard) (Shard, bool) {
	var best Shard
	var bestScore uint64
	found := false
	for _, s := range shards {
		sc := score(key, s.ID)
		if !found || sc > bestScore || (sc == bestScore && s.ID < best.ID) {
			best, bestScore, found = s, sc, true
		}
	}
	return best, found
}

// Topology is the versioned shard set. Every mutation bumps the epoch;
// the router re-resolves its routes when it observes a new epoch, and
// each culpeod advertises the epoch it was last told about on /healthz —
// so "did my topology push land everywhere" is answerable from health
// probes alone.
type Topology struct {
	mu     sync.RWMutex
	epoch  uint64
	shards []Shard // sorted by ID
}

func validateShard(s Shard) error {
	if s.ID == "" {
		return fmt.Errorf("shard: empty shard ID")
	}
	u, err := url.Parse(s.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("shard: %s: bad base URL %q", s.ID, s.URL)
	}
	return nil
}

// NewTopology builds epoch 1 from the given shards. IDs must be unique
// and URLs well-formed; an empty initial set is allowed (shards Join
// later) but the router fails requests until one does.
func NewTopology(shards ...Shard) (*Topology, error) {
	t := &Topology{epoch: 1}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if err := validateShard(s); err != nil {
			return nil, err
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("shard: duplicate shard ID %q", s.ID)
		}
		seen[s.ID] = true
		t.shards = append(t.shards, s)
	}
	sort.Slice(t.shards, func(i, j int) bool { return t.shards[i].ID < t.shards[j].ID })
	return t, nil
}

// Epoch returns the current topology version.
func (t *Topology) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Snapshot returns the epoch and a copy of the shard set (sorted by ID).
func (t *Topology) Snapshot() (uint64, []Shard) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Shard, len(t.shards))
	copy(out, t.shards)
	return t.epoch, out
}

// Join adds a shard (or moves an existing ID to a new URL — a rejoin
// after a kill comes back on a fresh port) and bumps the epoch. Returns
// the new epoch.
func (t *Topology) Join(s Shard) (uint64, error) {
	if err := validateShard(s); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.shards {
		if t.shards[i].ID == s.ID {
			t.shards[i] = s
			t.epoch++
			return t.epoch, nil
		}
	}
	t.shards = append(t.shards, s)
	sort.Slice(t.shards, func(i, j int) bool { return t.shards[i].ID < t.shards[j].ID })
	t.epoch++
	return t.epoch, nil
}

// Leave removes a shard by ID and bumps the epoch. Returns the new epoch.
func (t *Topology) Leave(id string) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.shards {
		if t.shards[i].ID == id {
			t.shards = append(t.shards[:i], t.shards[i+1:]...)
			t.epoch++
			return t.epoch, nil
		}
	}
	return 0, fmt.Errorf("shard: leave: unknown shard %q", id)
}

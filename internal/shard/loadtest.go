// The sharded throughput rig behind `culpeo loadtest -shards` and the
// BENCH_culpeo.json shard-scaling record. It boots N in-process culpeod
// shards (serve.New behind loopback HTTP, each advertising its shard ID
// and running a deliberately small V_safe cache), routes a fixed working
// set of distinct estimate queries through a Router, and measures
// sustained throughput.
//
// The rig is built to expose the effect sharding actually has on this
// service: V_safe estimation is cache-bound, so the win of N shards is
// cache *partitioning*, not CPU parallelism (on a 1-CPU box there is no
// CPU to parallelize over). With a working set W larger than one node's
// cache, a single shard thrashes — cyclic access over an undersized LRU
// hits 0% and every request pays the full Algorithm 1 miss. Split W over
// enough shards that each slice fits its node's cache and the same
// workload runs almost entirely cache-hot. The Scaling sweep records
// exactly that transition.
package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/client"
	"culpeo/internal/serve"
)

// LoadTestOptions configures one sharded throughput run.
type LoadTestOptions struct {
	// Shards is the node count (<=0: 1).
	Shards int
	// WorkingSet is the number of distinct (model, trace) queries cycled
	// through (<=0: 256).
	WorkingSet int
	// PerShardCache is each node's V_safe cache capacity (<=0: 96 — sized
	// so the default working set thrashes one shard and fits in four).
	PerShardCache int
	// Requests is the total request count (<=0: 4096 — enough that the
	// one-per-key cold misses fade into the steady state).
	Requests int
	// Concurrency is the closed-loop worker count (<=0: 4).
	Concurrency int
}

// LoadTestResult reports one run at one shard count.
type LoadTestResult struct {
	Shards        int     `json:"shards"`
	Requests      uint64  `json:"requests"`
	Failures      uint64  `json:"failures"`
	DurationSec   float64 `json:"duration_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// HitRate aggregates hits/(hits+misses) over every shard's cache — the
	// mechanism column: watch it go 0 → ~1 as shards absorb the working set.
	HitRate float64 `json:"cache_hit_rate"`
	// Evictions aggregates LRU evictions over every shard — the thrash
	// column, the counter a production fleet would alarm on.
	Evictions uint64 `json:"evictions"`
}

// workItem is one precomputed query: route key + marshaled body.
type workItem struct {
	key  uint64
	body []byte
}

// Defaults fills unset fields with the rig's default configuration (the
// values the recorded BENCH artifact describes).
func (o *LoadTestOptions) Defaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.WorkingSet <= 0 {
		o.WorkingSet = 256
	}
	if o.PerShardCache <= 0 {
		o.PerShardCache = 96
	}
	if o.Requests <= 0 {
		o.Requests = 4096
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
}

// buildWork precomputes the working set: distinct uniform loads (each a
// distinct trace fingerprint, hence a distinct cache line and route key),
// marshaled once so the hot loop only replays bytes. The 50 ms duration
// matters: it puts one Algorithm 1 miss at ~1 ms of estimator work, the
// regime where cache effectiveness — the thing sharding changes — is what
// sets throughput. (Sub-millisecond traces cost microseconds to estimate
// and every shard count measures the same HTTP overhead.)
func buildWork(n int) ([]workItem, error) {
	items := make([]workItem, n)
	for i := range items {
		req := api.VSafeRequest{Load: api.LoadSpec{
			Shape: "uniform",
			I:     float64(i+1) * 0.5e-3,
			T:     50e-3,
		}}
		model, trace, err := serve.Fingerprints(req, nil)
		if err != nil {
			return nil, fmt.Errorf("shard: loadtest work item %d: %w", i, err)
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		items[i] = workItem{key: Key(model, trace), body: body}
	}
	return items, nil
}

// LoadTest boots opt.Shards in-process culpeod nodes, routes the working
// set through a Router, and reports sustained throughput plus aggregated
// cache effectiveness.
func LoadTest(ctx context.Context, opt LoadTestOptions) (LoadTestResult, error) {
	opt.Defaults()
	res := LoadTestResult{Shards: opt.Shards}

	work, err := buildWork(opt.WorkingSet)
	if err != nil {
		return res, err
	}

	servers := make([]*serve.Server, opt.Shards)
	shards := make([]Shard, opt.Shards)
	for i := range servers {
		s := serve.New(serve.Config{
			ShardID:     fmt.Sprintf("s%d", i),
			CacheSize:   opt.PerShardCache,
			MaxInFlight: opt.Concurrency,
			QueueDepth:  4 * opt.Concurrency,
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		servers[i] = s
		shards[i] = Shard{ID: fmt.Sprintf("s%d", i), URL: ts.URL}
	}
	topo, err := NewTopology(shards...)
	if err != nil {
		return res, err
	}
	// Retries and breaker off: the rig measures raw routed turnaround, and
	// any failure must surface as a failure, not vanish into failover.
	router := NewRouter(topo, RouterConfig{Client: client.Config{
		HTTPClient: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        opt.Shards * opt.Concurrency,
			MaxIdleConnsPerHost: opt.Concurrency,
		}},
		Budget:         30 * time.Second,
		AttemptTimeout: 10 * time.Second,
		MaxAttempts:    1,
		Breaker:        client.BreakerConfig{Disabled: true},
	}})
	defer router.Close()

	// One warm-up request proves the fleet answers; it is not measured and
	// (being item 0 re-requested later) does not distort the hit profile
	// beyond one line.
	if _, err := router.DoKeyed(ctx, work[0].key, client.PathVSafe, work[0].body); err != nil {
		return res, fmt.Errorf("shard: loadtest fleet unreachable: %w", err)
	}

	var (
		wg       sync.WaitGroup
		next     atomic.Uint64
		done     atomic.Uint64
		failures atomic.Uint64
	)
	start := time.Now()
	for g := 0; g < opt.Concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				if n >= uint64(opt.Requests) || ctx.Err() != nil {
					return
				}
				// Cyclic walk over the working set: the LRU's worst case
				// when undersized, and its best case when it fits.
				it := work[n%uint64(len(work))]
				if _, err := router.DoKeyed(ctx, it.key, client.PathVSafe, it.body); err != nil {
					failures.Add(1)
				} else {
					done.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.Requests = done.Load()
	res.Failures = failures.Load()
	res.DurationSec = elapsed.Seconds()
	if res.DurationSec > 0 {
		res.ThroughputRPS = float64(res.Requests) / res.DurationSec
	}
	var hits, misses uint64
	for _, s := range servers {
		st := s.Cache().Stats()
		hits += st.Hits
		misses += st.Misses
		res.Evictions += st.Evictions
	}
	if hits+misses > 0 {
		res.HitRate = float64(hits) / float64(hits+misses)
	}
	if res.Requests == 0 {
		return res, fmt.Errorf("shard: loadtest completed no requests")
	}
	return res, nil
}

// Scaling runs LoadTest at each shard count with an otherwise identical
// workload and returns the rows in order — the 1→4→8 scaling record that
// lands in BENCH_culpeo.json.
func Scaling(ctx context.Context, counts []int, opt LoadTestOptions) ([]LoadTestResult, error) {
	rows := make([]LoadTestResult, 0, len(counts))
	for _, n := range counts {
		o := opt
		o.Shards = n
		row, err := LoadTest(ctx, o)
		if err != nil {
			return rows, fmt.Errorf("shard: scaling at %d shards: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

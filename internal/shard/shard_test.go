package shard

import (
	"fmt"
	"math"
	"testing"
)

func testShards(n int) []Shard {
	out := make([]Shard, n)
	for i := range out {
		out[i] = Shard{ID: fmt.Sprintf("s%d", i), URL: fmt.Sprintf("http://127.0.0.1:%d", 9000+i)}
	}
	return out
}

// TestRankIsPermutation: Rank returns every shard exactly once, with the
// owner first, and is deterministic.
func TestRankIsPermutation(t *testing.T) {
	shards := testShards(8)
	for k := uint64(0); k < 64; k++ {
		key := Key(k*0x9e3779b97f4a7c15, k)
		r1, r2 := Rank(key, shards), Rank(key, shards)
		if len(r1) != len(shards) {
			t.Fatalf("rank length %d, want %d", len(r1), len(shards))
		}
		seen := map[string]bool{}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("rank not deterministic at %d: %v vs %v", i, r1[i], r2[i])
			}
			if seen[r1[i].ID] {
				t.Fatalf("duplicate %s in rank", r1[i].ID)
			}
			seen[r1[i].ID] = true
		}
		owner, ok := Owner(key, shards)
		if !ok || owner != r1[0] {
			t.Fatalf("Owner = %v, Rank[0] = %v", owner, r1[0])
		}
	}
}

// TestRankBalance: owners spread roughly evenly over many keys — the
// property that makes per-shard caches comparable in size.
func TestRankBalance(t *testing.T) {
	shards := testShards(4)
	const keys = 4000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		key := Key(uint64(i)*0x9e3779b97f4a7c15, uint64(i)*0x85ebca6b)
		owner, _ := Owner(key, shards)
		counts[owner.ID]++
	}
	want := keys / len(shards)
	for id, c := range counts {
		if math.Abs(float64(c-want)) > 0.25*float64(want) {
			t.Fatalf("shard %s owns %d of %d keys (want ~%d ±25%%): %v", id, c, keys, want, counts)
		}
	}
}

// TestRankMinimalDisruption: removing one shard remaps only the keys it
// owned — every other key keeps its owner, and the removed shard's keys
// move to their rank-2 candidate. This is why a kill leaves the surviving
// shards' caches warm.
func TestRankMinimalDisruption(t *testing.T) {
	full := testShards(5)
	without := append(append([]Shard{}, full[:2]...), full[3:]...) // drop s2
	for i := 0; i < 2000; i++ {
		key := Key(uint64(i)*0x9e3779b97f4a7c15, uint64(i))
		before := Rank(key, full)
		after, _ := Owner(key, without)
		if before[0].ID != "s2" {
			if after != before[0] {
				t.Fatalf("key %d: owner moved %s -> %s though s2 did not own it", i, before[0].ID, after.ID)
			}
			continue
		}
		if after != before[1] {
			t.Fatalf("key %d: s2's key went to %s, want failover candidate %s", i, after.ID, before[1].ID)
		}
	}
}

// TestKeyOrderSensitivity: (a, b) and (b, a) route independently, and
// ObservationKey distinguishes its voltage positions.
func TestKeyOrderSensitivity(t *testing.T) {
	if Key(1, 2) == Key(2, 1) {
		t.Fatal("Key must not be symmetric in (model, trace)")
	}
	if ObservationKey(1, 2.0, 1.9, 2.0) == ObservationKey(1, 2.0, 2.0, 1.9) {
		t.Fatal("ObservationKey must distinguish voltage positions")
	}
}

// TestTopologyEpochs: mutations bump the epoch; validation rejects
// malformed shards; Leave of an unknown ID errors without a bump.
func TestTopologyEpochs(t *testing.T) {
	topo, err := NewTopology(testShards(2)...)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", topo.Epoch())
	}
	if e, err := topo.Join(Shard{ID: "s9", URL: "http://127.0.0.1:9900"}); err != nil || e != 2 {
		t.Fatalf("Join: %v, epoch %d", err, e)
	}
	// Rejoin at a new URL: same ID, epoch bumps, shard count unchanged.
	if e, err := topo.Join(Shard{ID: "s9", URL: "http://127.0.0.1:9901"}); err != nil || e != 3 {
		t.Fatalf("rejoin: %v, epoch %d", err, e)
	}
	epoch, shards := topo.Snapshot()
	if epoch != 3 || len(shards) != 3 {
		t.Fatalf("snapshot = epoch %d, %d shards", epoch, len(shards))
	}
	for i := 1; i < len(shards); i++ {
		if shards[i-1].ID >= shards[i].ID {
			t.Fatalf("snapshot not sorted: %v", shards)
		}
	}
	if e, err := topo.Leave("s9"); err != nil || e != 4 {
		t.Fatalf("Leave: %v, epoch %d", err, e)
	}
	if _, err := topo.Leave("s9"); err == nil {
		t.Fatal("Leave of unknown shard must error")
	}
	if topo.Epoch() != 4 {
		t.Fatalf("failed Leave bumped the epoch to %d", topo.Epoch())
	}
	if _, err := topo.Join(Shard{ID: "", URL: "http://x"}); err == nil {
		t.Fatal("empty ID must be rejected")
	}
	if _, err := topo.Join(Shard{ID: "ok", URL: "127.0.0.1:9000"}); err == nil {
		t.Fatal("scheme-less URL must be rejected")
	}
	if _, err := NewTopology(Shard{ID: "a", URL: "http://h"}, Shard{ID: "a", URL: "http://h"}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
}

package shard

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/client"
	"culpeo/internal/serve"
)

// testFleet is N in-process culpeod shards behind a Router.
type testFleet struct {
	servers []*serve.Server
	https   []*httptest.Server
	topo    *Topology
	router  *Router

	mu     sync.Mutex
	events []Event
}

func (f *testFleet) recordEvent(ev Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.events = append(f.events, ev)
}

func (f *testFleet) eventLog() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Event{}, f.events...)
}

// newFleet boots n shards s0..s(n-1) with deterministic client settings:
// one attempt per pool call (the router owns failover), a fast breaker,
// and an event-counted cooldown so nothing depends on wall-clock time.
func newFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	shards := make([]Shard, n)
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{ShardID: fmt.Sprintf("s%d", i)})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.https = append(f.https, ts)
		shards[i] = Shard{ID: fmt.Sprintf("s%d", i), URL: ts.URL}
	}
	topo, err := NewTopology(shards...)
	if err != nil {
		t.Fatal(err)
	}
	f.topo = topo
	f.router = NewRouter(topo, RouterConfig{
		Client: client.Config{
			DisableKeepAlives: true,
			Budget:            5 * time.Second,
			AttemptTimeout:    2 * time.Second,
			MaxAttempts:       1,
			Seed:              1,
			Breaker:           client.BreakerConfig{FailureThreshold: 2, CooldownCalls: 10000},
		},
		OnEvent: f.recordEvent,
	})
	t.Cleanup(f.router.Close)
	return f
}

// singleNode boots one unsharded culpeod with a plain client.Pool — the
// parity reference.
func singleNode(t *testing.T) *client.Pool {
	t.Helper()
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	pool, err := client.New(client.Config{Backends: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// stripReqID drops the per-pool request-ID suffix ("(request c5-a1)") so
// error strings from different pools compare on substance.
func stripReqID(err error) string {
	s := err.Error()
	if i := strings.Index(s, " (request "); i >= 0 {
		return s[:i]
	}
	return s
}

func mustSameEstimate(t *testing.T, tag string, got, want api.EstimateResponse) {
	t.Helper()
	if !sameBits(got.VSafe, want.VSafe) || !sameBits(got.VDelta, want.VDelta) || !sameBits(got.VE, want.VE) {
		t.Fatalf("%s: routed %+v, single-node %+v (bit mismatch)", tag, got, want)
	}
}

// TestRouterParityWithSingleNode: every endpoint answers bit-identically
// through the sharded tier and through one unsharded node — sharding must
// be invisible to results.
func TestRouterParityWithSingleNode(t *testing.T) {
	ctx := context.Background()
	fleet := newFleet(t, 3)
	ref := singleNode(t)

	vsafes := []api.VSafeRequest{
		{Load: api.LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}},
		{Load: api.LoadSpec{Shape: "pulse", I: 40e-3, T: 5e-3}},
		{Load: api.LoadSpec{Peripheral: "gesture"}},
		{Power: api.PowerSpec{C: 33e-3, ESR: 7}, Load: api.LoadSpec{Shape: "uniform", I: 10e-3, T: 20e-3}},
	}
	for i, req := range vsafes {
		got, err := fleet.router.VSafe(ctx, req)
		if err != nil {
			t.Fatalf("vsafe %d: %v", i, err)
		}
		want, err := ref.VSafe(ctx, req)
		if err != nil {
			t.Fatalf("vsafe %d (ref): %v", i, err)
		}
		mustSameEstimate(t, fmt.Sprintf("vsafe %d", i), got, want)
	}

	rreq := api.VSafeRRequest{Observation: api.ObservationSpec{VStart: 2.5, VMin: 2.2, VFinal: 2.4}}
	gotR, err := fleet.router.VSafeR(ctx, rreq)
	if err != nil {
		t.Fatalf("vsafe-r: %v", err)
	}
	wantR, err := ref.VSafeR(ctx, rreq)
	if err != nil {
		t.Fatalf("vsafe-r (ref): %v", err)
	}
	mustSameEstimate(t, "vsafe-r", gotR, wantR)

	sreq := api.SimulateRequest{Load: api.LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}, Fast: true}
	gotS, err := fleet.router.Simulate(ctx, sreq)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	wantS, err := ref.Simulate(ctx, sreq)
	if err != nil {
		t.Fatalf("simulate (ref): %v", err)
	}
	if !sameBits(gotS.VMin, wantS.VMin) || !sameBits(gotS.VFinal, wantS.VFinal) ||
		!sameBits(gotS.Duration, wantS.Duration) || !sameBits(gotS.EnergyUsed, wantS.EnergyUsed) ||
		gotS.Completed != wantS.Completed || gotS.PowerFailed != wantS.PowerFailed {
		t.Fatalf("simulate: routed %+v, single-node %+v", gotS, wantS)
	}

	// A 4xx must come back verbatim from whichever shard got it, with no
	// failover attempts inflating the error.
	bad := api.VSafeRequest{Load: api.LoadSpec{Shape: "sawtooth"}}
	_, gotErr := fleet.router.VSafe(ctx, bad)
	_, wantErr := ref.VSafe(ctx, bad)
	if gotErr == nil || wantErr == nil || stripReqID(gotErr) != stripReqID(wantErr) {
		t.Fatalf("4xx parity: routed %v, single-node %v", gotErr, wantErr)
	}
}

// TestRouterBatchScatterParity: a mixed batch (estimates, simulations, a
// malformed element mid-list) scatter-gathered over 3 shards reassembles
// bit-identically to the single-node answer, in order.
func TestRouterBatchScatterParity(t *testing.T) {
	ctx := context.Background()
	fleet := newFleet(t, 3)
	ref := singleNode(t)

	var breq api.BatchRequest
	for i := 0; i < 9; i++ {
		breq.Requests = append(breq.Requests, api.VSafeRequest{
			Load: api.LoadSpec{Shape: "uniform", I: float64(i+1) * 3e-3, T: 8e-3},
		})
	}
	breq.Requests[4] = api.VSafeRequest{Load: api.LoadSpec{Shape: "sawtooth"}} // per-element error
	for i := 0; i < 3; i++ {
		breq.Simulations = append(breq.Simulations, api.SimulateRequest{
			Load:   api.LoadSpec{Shape: "pulse", I: float64(i+2) * 10e-3, T: 4e-3},
			VStart: 2.5,
			Fast:   true,
		})
	}

	got, err := fleet.router.Batch(ctx, breq)
	if err != nil {
		t.Fatalf("routed batch: %v", err)
	}
	want, err := ref.Batch(ctx, breq)
	if err != nil {
		t.Fatalf("single-node batch: %v", err)
	}
	if len(got.Results) != len(want.Results) || len(got.Simulations) != len(want.Simulations) {
		t.Fatalf("shape: routed %d/%d, single-node %d/%d",
			len(got.Results), len(got.Simulations), len(want.Results), len(want.Simulations))
	}
	for i := range want.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Error != w.Error {
			t.Fatalf("result %d: error %q, want %q", i, g.Error, w.Error)
		}
		if (g.Estimate == nil) != (w.Estimate == nil) {
			t.Fatalf("result %d: estimate presence mismatch", i)
		}
		if w.Estimate != nil {
			mustSameEstimate(t, fmt.Sprintf("batch result %d", i), *g.Estimate, *w.Estimate)
		}
	}
	for i := range want.Simulations {
		g, w := got.Simulations[i], want.Simulations[i]
		if g.Error != w.Error || (g.Result == nil) != (w.Result == nil) {
			t.Fatalf("sim %d: %+v vs %+v", i, g, w)
		}
		if w.Result != nil && (!sameBits(g.Result.VMin, w.Result.VMin) || !sameBits(g.Result.VFinal, w.Result.VFinal)) {
			t.Fatalf("sim %d: routed %+v, single-node %+v", i, *g.Result, *w.Result)
		}
	}

	// The batch genuinely scattered: more than one shard computed misses.
	sharded := 0
	for _, s := range fleet.servers {
		if s.Cache().Stats().Misses > 0 {
			sharded++
		}
	}
	if sharded < 2 {
		t.Fatalf("batch landed on %d shard(s), expected a scatter", sharded)
	}

	// Empty-batch error parity: routed whole, answered by one shard with
	// the single-node 400.
	_, gotErr := fleet.router.Batch(ctx, api.BatchRequest{})
	_, wantErr := ref.Batch(ctx, api.BatchRequest{})
	if gotErr == nil || wantErr == nil || stripReqID(gotErr) != stripReqID(wantErr) {
		t.Fatalf("empty batch parity: routed %v, single-node %v", gotErr, wantErr)
	}
}

// TestRouterRoutesByOwnership: each request lands on the rendezvous owner
// of its key — every shard's cache misses exactly the keys it owns.
func TestRouterRoutesByOwnership(t *testing.T) {
	ctx := context.Background()
	fleet := newFleet(t, 3)
	_, shards := fleet.topo.Snapshot()

	work, err := buildWork(30)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]uint64{}
	for _, it := range work {
		owner, _ := Owner(it.key, shards)
		owned[owner.ID]++
	}
	for _, it := range work {
		if _, err := fleet.router.DoKeyed(ctx, it.key, client.PathVSafe, it.body); err != nil {
			t.Fatalf("DoKeyed: %v", err)
		}
	}
	for i, s := range fleet.servers {
		id := fmt.Sprintf("s%d", i)
		st := s.Cache().Stats()
		if st.Misses != owned[id] || st.Hits != 0 {
			t.Fatalf("%s saw %d misses / %d hits, owns %d keys", id, st.Misses, st.Hits, owned[id])
		}
	}
}

// TestRouterFailoverOnKilledShard: hard-kill one shard; every request
// keyed to it fails over to its rank-2 candidate with zero caller-visible
// failures, the breaker opens after the threshold, and a rejoin at a new
// URL (epoch bump) routes the keys home again.
func TestRouterFailoverOnKilledShard(t *testing.T) {
	ctx := context.Background()
	fleet := newFleet(t, 3)
	_, shards := fleet.topo.Snapshot()

	// A key owned by s1, plus its failover candidate.
	work, err := buildWork(64)
	if err != nil {
		t.Fatal(err)
	}
	var item workItem
	var fallback string
	found := false
	for _, it := range work {
		rank := Rank(it.key, shards)
		if rank[0].ID == "s1" {
			item, fallback, found = it, rank[1].ID, true
			break
		}
	}
	if !found {
		t.Fatal("no key owned by s1 in 64 items")
	}

	fleet.https[1].Close() // hard kill: connection refused from here on

	for i := 0; i < 6; i++ {
		if _, err := fleet.router.DoKeyed(ctx, item.key, client.PathVSafe, item.body); err != nil {
			t.Fatalf("request %d through killed-shard key failed: %v", i, err)
		}
	}
	// The fallback shard served them (1 miss + 5 hits on its cache).
	var fbIdx int
	fmt.Sscanf(fallback, "s%d", &fbIdx)
	if st := fleet.servers[fbIdx].Cache().Stats(); st.Misses != 1 || st.Hits != 5 {
		t.Fatalf("fallback %s stats = %+v, want 1 miss + 5 hits", fallback, st)
	}

	// Events: first calls record "attempt failed" reroutes, then the
	// breaker opens and later calls record "unavailable" skips.
	var attemptFailed, unavailable, opened bool
	for _, ev := range fleet.eventLog() {
		if ev.Shard == "route" && ev.From == "s1" && ev.To == fallback {
			switch ev.Cause {
			case "attempt failed":
				attemptFailed = true
			case "unavailable":
				unavailable = true
			}
		}
		if ev.Shard == "s1" && ev.To == "open" {
			opened = true
		}
	}
	if !attemptFailed || !unavailable || !opened {
		t.Fatalf("event log missing transitions (attemptFailed=%v unavailable=%v opened=%v):\n%v",
			attemptFailed, unavailable, opened, fleet.eventLog())
	}

	// Rejoin s1 at a fresh URL; the epoch bump re-resolves a fresh pool
	// and the key routes home (cold cache, correct answer).
	s1 := serve.New(serve.Config{ShardID: "s1"})
	ts := httptest.NewServer(s1.Handler())
	t.Cleanup(ts.Close)
	if _, err := fleet.topo.Join(Shard{ID: "s1", URL: ts.URL}); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.router.DoKeyed(ctx, item.key, client.PathVSafe, item.body); err != nil {
		t.Fatalf("post-rejoin request: %v", err)
	}
	if fleet.router.Epoch() != 2 {
		t.Fatalf("router epoch = %d, want 2 after rejoin", fleet.router.Epoch())
	}
	if st := s1.Cache().Stats(); st.Misses != 1 {
		t.Fatalf("rejoined s1 stats = %+v, want the key's cold miss", st)
	}
}

// TestRouterDrainFailoverAndReadmission: a draining shard still answers,
// but ProbeAll must eject it (failover) and readmit it once the drain
// clears — the graceful-restart path.
func TestRouterDrainFailoverAndReadmission(t *testing.T) {
	ctx := context.Background()
	fleet := newFleet(t, 3)
	_, shards := fleet.topo.Snapshot()

	work, err := buildWork(64)
	if err != nil {
		t.Fatal(err)
	}
	var item workItem
	var fbIdx int
	found := false
	for _, it := range work {
		rank := Rank(it.key, shards)
		if rank[0].ID == "s0" {
			fmt.Sscanf(rank[1].ID, "s%d", &fbIdx)
			item, found = it, true
			break
		}
	}
	if !found {
		t.Fatal("no key owned by s0 in 64 items")
	}

	must := func(tag string) {
		t.Helper()
		if _, err := fleet.router.DoKeyed(ctx, item.key, client.PathVSafe, item.body); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
	}

	must("baseline")
	if st := fleet.servers[0].Cache().Stats(); st.Misses != 1 {
		t.Fatalf("baseline did not land on s0: %+v", st)
	}

	fleet.servers[0].SetDraining(true)
	fleet.router.ProbeAll(ctx)
	must("drained")
	if st := fleet.servers[fbIdx].Cache().Stats(); st.Misses != 1 {
		t.Fatalf("drained request did not fail over: fallback stats %+v", st)
	}

	fleet.servers[0].SetDraining(false)
	fleet.router.ProbeAll(ctx)
	must("readmitted")
	if st := fleet.servers[0].Cache().Stats(); st.Hits != 1 {
		t.Fatalf("readmitted request did not return to s0: %+v", st)
	}

	// The probe transitions are in the log under the shard's name.
	var ejected, readmitted bool
	for _, ev := range fleet.eventLog() {
		if ev.Shard == "s0" && ev.Cause == "draining" {
			ejected = true
		}
		if ev.Shard == "s0" && ev.Cause == "probe ok" {
			readmitted = true
		}
	}
	if !ejected || !readmitted {
		t.Fatalf("probe events missing (ejected=%v readmitted=%v):\n%v", ejected, readmitted, fleet.eventLog())
	}
}

// TestRouterTopologyChurnUnderLoad: requests keep succeeding while a
// shard joins and leaves concurrently — epoch re-resolution must not drop
// in-flight work. Run with -race this is the router's concurrency proof.
func TestRouterTopologyChurnUnderLoad(t *testing.T) {
	ctx := context.Background()
	fleet := newFleet(t, 3)

	// A fourth shard that churns in and out of the topology.
	s3 := serve.New(serve.Config{ShardID: "s3"})
	ts3 := httptest.NewServer(s3.Handler())
	t.Cleanup(ts3.Close)

	work, err := buildWork(16)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				it := work[(g*7+i)%len(work)]
				if _, err := fleet.router.DoKeyed(ctx, it.key, client.PathVSafe, it.body); err != nil {
					errc <- fmt.Errorf("worker %d call %d: %w", g, i, err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := fleet.topo.Join(Shard{ID: "s3", URL: ts3.URL}); err != nil {
				errc <- err
				return
			}
			if _, err := fleet.topo.Leave("s3"); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if fleet.router.Calls() != 120 {
		t.Fatalf("router calls = %d, want 120", fleet.router.Calls())
	}
}

// TestRouterEmptyTopology: a router over zero shards fails cleanly.
func TestRouterEmptyTopology(t *testing.T) {
	topo, err := NewTopology()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(topo, RouterConfig{})
	defer r.Close()
	if _, err := r.VSafe(context.Background(), api.VSafeRequest{}); err != ErrNoShards {
		t.Fatalf("err = %v, want ErrNoShards", err)
	}
}

// TestRouterMetrics: per-shard snapshots carry the health identity the
// shards advertise.
func TestRouterMetrics(t *testing.T) {
	ctx := context.Background()
	fleet := newFleet(t, 2)
	fleet.router.ProbeAll(ctx)
	ms := fleet.router.Metrics()
	if len(ms) != 2 {
		t.Fatalf("%d shard metrics, want 2", len(ms))
	}
	for i, m := range ms {
		want := fmt.Sprintf("s%d", i)
		if m.Shard.ID != want {
			t.Fatalf("metrics[%d].Shard.ID = %q, want %q (sorted)", i, m.Shard.ID, want)
		}
		if len(m.Pool.Backends) != 1 || m.Pool.Backends[0].ShardID != want {
			t.Fatalf("metrics[%d] backend identity = %+v", i, m.Pool.Backends)
		}
		if !strings.HasPrefix(m.Pool.Backends[0].Version, "culpeod/") {
			t.Fatalf("metrics[%d] version = %q", i, m.Pool.Backends[0].Version)
		}
	}
}

// TestShardLoadTestSmoke: the throughput rig completes a small run with
// zero failures and full accounting.
func TestShardLoadTestSmoke(t *testing.T) {
	res, err := LoadTest(context.Background(), LoadTestOptions{
		Shards:        2,
		WorkingSet:    16,
		PerShardCache: 8,
		Requests:      64,
		Concurrency:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.Requests != 64 {
		t.Fatalf("result = %+v, want 64 requests, 0 failures", res)
	}
	if res.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputRPS)
	}
}

// The Router: the failover engine of the sharded tier. One client.Pool
// per shard (so each shard keeps the full PR-5 machinery — per-attempt
// deadlines, breaker, probe ejection/readmission — against its own node),
// with the router deciding *which* pool a request is offered to:
//
//   - route by rendezvous rank of the request's cache-fingerprint key;
//   - skip a shard whose pool reports itself inadmissible (breaker open
//     or probe-ejected — the latter includes /healthz draining) and fail
//     over to the next-ranked candidate: a cold cache is acceptable, a
//     failed request is not;
//   - readmit recovered shards through the pool's own health probes,
//     driven on the router's call cadence (ProbeEvery) because a shard
//     the router has stopped routing to never advances its pool's call
//     counter;
//   - re-resolve routes when the Topology epoch moves, without dropping
//     in-flight work: superseded pools are retired, not closed, until
//     Close.
//
// Batch requests scatter-gather: elements are partitioned by their own
// route keys, each sub-batch rides the same failover path, and the
// responses reassemble index-aligned — so a batch behaves exactly like
// its elements would have individually, which is what the soak's
// bit-parity gate checks.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"culpeo/internal/api"
	"culpeo/internal/client"
	"culpeo/internal/partsdb"
	"culpeo/internal/serve"
)

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Client is the template for each shard's single-backend client.Pool.
	// Backends is ignored (the topology supplies one URL per shard);
	// OnTransition is chained — pool events re-emit as router Events named
	// by shard ID.
	Client client.Config
	// ProbeEvery, when > 0, probes every shard's /healthz synchronously on
	// every Nth router call — the deterministic detection path for
	// draining shards and the readmission path for ejected ones. (0: no
	// router-driven probes; rely on the pool's own ProbeInterval.)
	ProbeEvery int
	// Catalog resolves PowerSpec.Part during route-key derivation (nil:
	// partsdb.DefaultIndex(), matching the server).
	Catalog *partsdb.Index
	// OnEvent observes routing decisions, pool transitions and topology
	// re-resolutions. Called synchronously; keep it fast.
	OnEvent func(Event)
}

// Event is one router-observed state change. Call is the router's call
// counter when it fired — a sequential workload therefore produces a
// bit-reproducible event log, which the shard soak golden-locks.
type Event struct {
	Call  uint64 `json:"call"`
	Shard string `json:"shard"` // shard ID, "route" or "topology"
	From  string `json:"from"`
	To    string `json:"to"`
	Cause string `json:"cause"`
}

// String renders "call=12 s1 closed->open (failures=2)" — the golden-log
// line format, shared shape with client.Event.
func (e Event) String() string {
	return fmt.Sprintf("call=%d %s %s->%s (%s)", e.Call, e.Shard, e.From, e.To, e.Cause)
}

// shardPool pairs a shard with its dedicated single-backend pool.
type shardPool struct {
	shard Shard
	pool  *client.Pool
}

// Router routes requests onto a live Topology. Safe for concurrent use;
// Close releases every pool, including retired ones.
type Router struct {
	cfg  RouterConfig
	topo *Topology

	calls atomic.Uint64

	mu      sync.RWMutex
	epoch   uint64
	pools   map[string]*shardPool
	retired []*client.Pool
	closed  bool
}

// NewRouter builds a Router over the topology and resolves the initial
// shard set immediately.
func NewRouter(topo *Topology, cfg RouterConfig) *Router {
	r := &Router{cfg: cfg, topo: topo, pools: make(map[string]*shardPool)}
	epoch, shards := topo.Snapshot()
	r.resolve(epoch, shards, 0)
	return r
}

// Close closes every shard pool, including pools retired by topology
// changes. In-flight calls started before Close may fail.
func (r *Router) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for _, sp := range r.pools {
		sp.pool.Close()
	}
	for _, p := range r.retired {
		p.Close()
	}
}

func (r *Router) emit(ev Event) {
	if r.cfg.OnEvent != nil {
		r.cfg.OnEvent(ev)
	}
}

// resolve rebuilds the pool set for a new topology epoch. Pools for
// unchanged (ID, URL) pairs are kept — their breaker and probe state is
// exactly the continuity "without dropping in-flight work" requires;
// superseded pools are retired, staying alive for calls that hold them,
// and are closed only by Close.
func (r *Router) resolve(epoch uint64, shards []Shard, call uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || epoch == r.epoch {
		return
	}
	next := make(map[string]*shardPool, len(shards))
	for _, s := range shards {
		if sp, ok := r.pools[s.ID]; ok && sp.shard.URL == s.URL {
			next[s.ID] = sp
			continue
		}
		sp, err := r.newShardPool(s)
		if err != nil {
			// Topology validated the URL, so this is unreachable in
			// practice; surface it in the event log rather than panicking.
			r.emit(Event{Call: call, Shard: s.ID, From: "new", To: "unusable", Cause: err.Error()})
			continue
		}
		next[s.ID] = sp
	}
	for id, sp := range r.pools {
		if next[id] != sp {
			r.retired = append(r.retired, sp.pool)
		}
	}
	from := fmt.Sprintf("epoch=%d", r.epoch)
	r.pools = next
	r.epoch = epoch
	r.emit(Event{Call: call, Shard: "topology", From: from, To: fmt.Sprintf("epoch=%d", epoch), Cause: fmt.Sprintf("%d shards", len(shards))})
}

// newShardPool builds the single-backend pool for one shard, chaining its
// transition events into the router's log under the shard's name.
func (r *Router) newShardPool(s Shard) (*shardPool, error) {
	cc := r.cfg.Client
	cc.Backends = []string{s.URL}
	inner := cc.OnTransition
	cc.OnTransition = func(ev client.Event) {
		r.emit(Event{Call: r.calls.Load(), Shard: s.ID, From: ev.From, To: ev.To, Cause: ev.Cause})
		if inner != nil {
			inner(ev)
		}
	}
	p, err := client.New(cc)
	if err != nil {
		return nil, err
	}
	return &shardPool{shard: s, pool: p}, nil
}

// routes snapshots the topology (re-resolving pools if the epoch moved)
// and returns the ranked candidate pools for key. The returned slice
// holds pool references that stay valid even if a topology change retires
// them mid-call.
func (r *Router) routes(key uint64, call uint64) []*shardPool {
	epoch, shards := r.topo.Snapshot()
	r.mu.RLock()
	stale := epoch != r.epoch
	r.mu.RUnlock()
	if stale {
		r.resolve(epoch, shards, call)
	}
	ranked := Rank(key, shards)
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*shardPool, 0, len(ranked))
	for _, s := range ranked {
		if sp, ok := r.pools[s.ID]; ok {
			out = append(out, sp)
		}
	}
	return out
}

// ProbeAll synchronously probes every current shard's /healthz (in shard
// ID order, so probe-driven events land deterministically). The soak
// calls it after topology pushes; the route path calls it on the
// ProbeEvery cadence.
func (r *Router) ProbeAll(ctx context.Context) {
	r.mu.RLock()
	sps := make([]*shardPool, 0, len(r.pools))
	for _, sp := range r.pools {
		sps = append(sps, sp)
	}
	r.mu.RUnlock()
	sort.Slice(sps, func(i, j int) bool { return sps[i].shard.ID < sps[j].shard.ID })
	for _, sp := range sps {
		sp.pool.ProbeAll(ctx)
	}
}

// Epoch returns the topology epoch the router last resolved.
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// ErrNoShards is returned when the topology is empty (or every shard's
// pool failed to build).
var ErrNoShards = errors.New("shard: no shards in topology")

// route is the failover engine: offer the call to ranked candidates —
// admissible ones first, then (only if that pass produced no answer)
// every candidate regardless, so a fleet-wide brown-out still gets the
// pool-level retry machinery rather than an instant failure. A
// non-retryable client error (4xx) returns immediately: the request is
// the bug and every shard will say the same thing.
func (r *Router) route(key uint64, do func(sp *shardPool) error) error {
	call := r.calls.Add(1)
	if n := r.cfg.ProbeEvery; n > 0 && call%uint64(n) == 0 {
		r.ProbeAll(context.Background())
	}
	candidates := r.routes(key, call)
	if len(candidates) == 0 {
		return ErrNoShards
	}
	primary := candidates[0]

	var lastErr error
	attempt := func(sp *shardPool, cause string) (bool, error) {
		err := do(sp)
		if err == nil {
			if sp != primary {
				r.emit(Event{Call: call, Shard: "route", From: primary.shard.ID, To: sp.shard.ID, Cause: cause})
			}
			return true, nil
		}
		lastErr = err
		var he *client.HTTPError
		if errors.As(err, &he) && !he.Retryable() {
			return true, err
		}
		return false, nil
	}

	skipped := false
	for _, sp := range candidates {
		if !sp.pool.Admissible() {
			skipped = true
			continue
		}
		cause := "attempt failed"
		if skipped {
			cause = "unavailable"
		}
		if done, err := attempt(sp, cause); done {
			return err
		}
	}
	// Second pass: every candidate, inadmissible or previously failed —
	// the last line of defense before failing the caller's request.
	for _, sp := range candidates {
		if done, err := attempt(sp, "last resort"); done {
			return err
		}
	}
	return fmt.Errorf("shard: all %d candidates failed for key %016x: %w", len(candidates), key, lastErr)
}

// --- route-key derivation ------------------------------------------------

// vsafeKey derives the route key for an estimate element. A spec the
// server would 400 has no fingerprint; key 0 routes it to a well-defined
// shard, which answers with exactly the error the single-node path would.
func (r *Router) vsafeKey(req api.VSafeRequest) uint64 {
	m, tr, err := serve.Fingerprints(req, r.cfg.Catalog)
	if err != nil {
		return Key(0, 0)
	}
	return Key(m, tr)
}

func (r *Router) vsafeRKey(req api.VSafeRRequest) uint64 {
	m, err := serve.PowerFingerprint(req.Power, r.cfg.Catalog)
	if err != nil {
		return Key(0, 0)
	}
	return ObservationKey(m, req.Observation.VStart, req.Observation.VMin, req.Observation.VFinal)
}

func (r *Router) simulateKey(req api.SimulateRequest) uint64 {
	m, tr, err := serve.SimulateFingerprints(req, r.cfg.Catalog)
	if err != nil {
		return Key(0, 0)
	}
	return Key(m, tr)
}

// --- typed endpoint methods ----------------------------------------------

// VSafe routes one estimate to the shard owning its cache line.
func (r *Router) VSafe(ctx context.Context, req api.VSafeRequest) (api.EstimateResponse, error) {
	var out api.EstimateResponse
	err := r.route(r.vsafeKey(req), func(sp *shardPool) error {
		var e error
		out, e = sp.pool.VSafe(ctx, req)
		return e
	})
	return out, err
}

// VSafeR routes one runtime estimate by its power model and observation.
func (r *Router) VSafeR(ctx context.Context, req api.VSafeRRequest) (api.EstimateResponse, error) {
	var out api.EstimateResponse
	err := r.route(r.vsafeRKey(req), func(sp *shardPool) error {
		var e error
		out, e = sp.pool.VSafeR(ctx, req)
		return e
	})
	return out, err
}

// Simulate routes one launch simulation.
func (r *Router) Simulate(ctx context.Context, req api.SimulateRequest) (api.SimulateResponse, error) {
	var out api.SimulateResponse
	err := r.route(r.simulateKey(req), func(sp *shardPool) error {
		var e error
		out, e = sp.pool.Simulate(ctx, req)
		return e
	})
	return out, err
}

// DoKeyed sends a pre-marshaled body to path on the shard owning key,
// with the full failover path. The load generator's escape hatch: it
// derives keys once and replays bodies from a flat table, keeping the
// client side out of the measured hot loop.
func (r *Router) DoKeyed(ctx context.Context, key uint64, path string, body []byte) ([]byte, error) {
	var out []byte
	err := r.route(key, func(sp *shardPool) error {
		var e error
		out, e = sp.pool.Do(ctx, path, body)
		return e
	})
	return out, err
}

// Batch scatter-gathers: elements are grouped by their own route keys,
// each group goes to its owning shard as a sub-batch (in shard-ID order —
// sequential and deterministic), and the responses reassemble
// index-aligned with the request. A group whose shard is down fails over
// exactly like a single request. An empty batch is routed whole so the
// server's "empty request list" error comes back verbatim.
func (r *Router) Batch(ctx context.Context, req api.BatchRequest) (api.BatchResponse, error) {
	if len(req.Requests) == 0 && len(req.Simulations) == 0 {
		var out api.BatchResponse
		err := r.route(Key(0, 0), func(sp *shardPool) error {
			var e error
			out, e = sp.pool.Batch(ctx, req)
			return e
		})
		return out, err
	}

	_, shards := r.topo.Snapshot()
	type group struct {
		key  string // owning shard ID
		rkey uint64 // a representative route key (first element's)
		sub  api.BatchRequest
		reqs []int // original indices of sub.Requests
		sims []int // original indices of sub.Simulations
	}
	groups := make(map[string]*group)
	assign := func(key uint64) *group {
		owner, ok := Owner(key, shards)
		id := ""
		if ok {
			id = owner.ID
		}
		g := groups[id]
		if g == nil {
			g = &group{key: id, rkey: key}
			groups[id] = g
		}
		return g
	}
	for i, el := range req.Requests {
		g := assign(r.vsafeKey(el))
		g.sub.Requests = append(g.sub.Requests, el)
		g.reqs = append(g.reqs, i)
	}
	for i, el := range req.Simulations {
		g := assign(r.simulateKey(el))
		g.sub.Simulations = append(g.sub.Simulations, el)
		g.sims = append(g.sims, i)
	}

	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })

	resp := api.BatchResponse{}
	if len(req.Requests) > 0 {
		resp.Results = make([]api.BatchResult, len(req.Requests))
	}
	if len(req.Simulations) > 0 {
		resp.Simulations = make([]api.BatchSimResult, len(req.Simulations))
	}
	for _, g := range ordered {
		var sub api.BatchResponse
		err := r.route(g.rkey, func(sp *shardPool) error {
			var e error
			sub, e = sp.pool.Batch(ctx, g.sub)
			return e
		})
		if err != nil {
			return api.BatchResponse{}, err
		}
		if len(sub.Results) != len(g.reqs) || len(sub.Simulations) != len(g.sims) {
			return api.BatchResponse{}, fmt.Errorf("shard: sub-batch shape mismatch: got %d/%d results, want %d/%d",
				len(sub.Results), len(sub.Simulations), len(g.reqs), len(g.sims))
		}
		for j, idx := range g.reqs {
			resp.Results[idx] = sub.Results[j]
		}
		for j, idx := range g.sims {
			resp.Simulations[idx] = sub.Simulations[j]
		}
	}
	return resp, nil
}

// --- observability -------------------------------------------------------

// ShardMetrics pairs one shard with its pool's client-side snapshot.
type ShardMetrics struct {
	Shard Shard                  `json:"shard"`
	Pool  client.MetricsSnapshot `json:"pool"`
}

// Metrics snapshots every current shard's pool, sorted by shard ID.
// Retired pools are excluded — their shard is no longer in the topology.
func (r *Router) Metrics() []ShardMetrics {
	r.mu.RLock()
	sps := make([]*shardPool, 0, len(r.pools))
	for _, sp := range r.pools {
		sps = append(sps, sp)
	}
	r.mu.RUnlock()
	sort.Slice(sps, func(i, j int) bool { return sps[i].shard.ID < sps[j].shard.ID })
	out := make([]ShardMetrics, len(sps))
	for i, sp := range sps {
		out[i] = ShardMetrics{Shard: sp.shard, Pool: sp.pool.Metrics()}
	}
	return out
}

// Calls returns the router call counter.
func (r *Router) Calls() uint64 { return r.calls.Load() }

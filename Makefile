# Development entry points. `make check` is the gate a change must pass:
# static analysis, a full build, the unit/property suites under the race
# detector, and the golden-file regression corpus.

GO ?= go

.PHONY: build vet test race golden golden-update soak alloc batch warm bench benchgate serve-smoke chaos shard stream crash check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1

# The expt suite includes the chaos test (all sweep drivers concurrently),
# so this is the cell-isolation proof as well as a unit-test run.
race:
	$(GO) test -race ./... -count=1

# Compare every recorded experiment output byte-for-byte, including the
# workers=1/4/NumCPU invariance sweep.
golden:
	$(GO) test ./internal/expt -run 'TestGolden' -count=1

# Re-record the corpus after an intended behaviour change. Review the diff.
golden-update:
	$(GO) test ./internal/expt -run 'TestGolden' -update -count=1

# Robustness soak: the full gate × fault matrix checked against its golden
# record, plus the fault-spec parser fuzz seeds and degradation suites.
soak:
	$(GO) test ./internal/expt -run 'TestGolden/soak' -count=1
	$(GO) test ./internal/faults ./internal/intermittent -count=1

# Zero-alloc guard for the simulator hot loop (testing.AllocsPerRun needs a
# non-race build, so this runs alongside `race` rather than inside it).
alloc:
	$(GO) test ./internal/powersys -run 'AllocFree' -count=1

# The batch-stepping wall: scalar/batch equivalence (bitwise on the exact
# path), the fuzz corpus seeds, chunked-sweep contracts and the serving
# batch lane, all under the race detector — then the steady-state
# zero-alloc guards, which need a non-race build for AllocsPerRun.
batch:
	$(GO) test -race ./internal/powersys -run 'TestBatch|TestCompiledProfile|FuzzBatchStep' -count=1
	$(GO) test -race ./internal/harness -run 'TestGroundTruthBatch' -count=1
	$(GO) test -race ./internal/sweep -run 'TestMapChunks' -count=1
	$(GO) test -race ./internal/serve -run 'TestBatchSimulate' -count=1
	$(GO) test ./internal/powersys -run 'TestBatch.*AllocFree' -count=1

# The miss-path wall, all under the race detector: warm-vs-cold bisection
# equivalence (scalar, batch, fuzz seeds, sweep drivers, partsdb chain) and
# the V_safe cache singleflight suite (same-key storm computes once,
# bit-exact fan-out, error propagation, waiter cancellation).
warm:
	$(GO) test -race ./internal/harness -run 'TestWarm|FuzzWarmBracket' -count=1
	$(GO) test -race ./internal/core -run 'TestVSafeCacheSingleflight|TestVSafeCacheWaiterCancel|TestVSafeCacheConcurrent' -count=1
	$(GO) test -race ./internal/expt -run 'TestWarm' -count=1
	$(GO) test -race ./internal/partsdb -run 'TestBankVSafeSweepWarm' -count=1

# Performance trajectory: the go-test benchmark sweep, then the recorded
# BENCH_culpeo.json artifact and its validation gate (fails on malformed or
# missing artifacts).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	$(GO) run ./cmd/culpeo bench
	$(GO) run ./cmd/culpeo benchcheck

# Performance regression gate: collect fresh micro-benchmark measurements
# and compare them against the committed artifact; any matching measurement
# more than 15% worse — after normalizing by the calibration spin, so
# machine-speed swings between runs don't count — fails. Up to 3 collection
# attempts: a real regression fails all of them, a host slow phase arriving
# mid-suite fails one. (A fresh report carries no serving/shard sections;
# those are recorded deliberately via `culpeo loadtest -record` /
# `-shardsweep -record`, not re-measured here.)
benchgate:
	$(GO) run ./cmd/culpeo benchcheck -against BENCH_culpeo.json -fresh 3

# Out-of-process serving smoke: build the real culpeod binary, boot it on an
# ephemeral port, exercise /healthz + /v1/vsafe + /v1/batch + /metrics, then
# SIGTERM it and require a graceful drain with exit 0.
serve-smoke:
	$(GO) build -o /tmp/culpeod-smoke ./cmd/culpeod
	$(GO) run ./internal/serve/smoke -bin /tmp/culpeod-smoke
	rm -f /tmp/culpeod-smoke

# Resilience soak, reduced schedule, under the race detector: two culpeod
# instances behind deterministic netchaos proxies, one client.Pool doing the
# retry/failover/breaker/hedging work, three runs gated on 100% eventual
# success, bit-exact parity with the library path, zero panics, and a
# byte-identical golden transition log — plus the daemon drain-failover test.
# For the full-length soak (240 calls, richer fault schedules) run:
#   go test ./internal/expt -run TestChaosSoak -count=1
# or, interactively: go run ./cmd/culpeo chaos
chaos:
	$(GO) test -race ./internal/expt -run 'TestChaosSoak' -short -count=1
	$(GO) test -race ./cmd/culpeod -run 'TestDrainFailover' -count=1

# Sharded estimation tier: rendezvous routing/failover/topology unit and
# integration suites under the race detector, then the reduced sharded
# lifecycle soak (partition → kill → leave → rejoin → drain → readmit)
# against its golden transition log. For the full-length soak run:
#   go test ./internal/expt -run TestShardSoak -count=1
# or, interactively: go run ./cmd/culpeo shardsoak
shard:
	$(GO) test -race ./internal/shard -count=1
	$(GO) test -race ./internal/expt -run 'TestShardSoak' -short -count=1

# Streaming soak, reduced schedule, under the race detector: two culpeod
# instances behind flapping netchaos links, session.LoadGen driving full
# device lifecycles (open, stream, detach, resume, close) through
# client.Stream, gated on zero failed sessions, exactly one terminal each,
# bit-exact estimate/margin/HTTP parity, bounded heap per resident session
# and zero server panics. For the full-length soak (100k sessions) run:
#   go run ./cmd/culpeo streamtest
stream:
	$(GO) test -race ./internal/expt -run 'TestStreamSoak' -short -count=1

# Crash-chaos soak, reduced schedule, under the race detector: build the
# real journaled culpeod, SIGKILL it mid-traffic across seeded restart
# cycles, and gate on zero lost acked observations, zero duplicated folds,
# bit-exact estimate/margin recovery, bit-identical terminal replays,
# idempotent close retries and a byte-identical event log across same-seed
# runs — plus the journal frame/recovery suites and their fuzz seeds. For
# the full 20-cycle, three-run soak: go run ./cmd/culpeo crashtest
crash:
	$(GO) test -race ./internal/expt -run 'TestCrashSoak' -short -count=1
	$(GO) test ./internal/journal -count=1

check: vet build alloc batch warm race golden soak serve-smoke chaos shard stream crash benchgate

// Command culpeo regenerates the paper's tables and figures from the
// simulation substrate. Each subcommand corresponds to one element of the
// evaluation:
//
//	culpeo fig1b       ESR drop and rebound decomposition (Figure 1b)
//	culpeo fig3        capacitor technology sweep (Figure 3)
//	culpeo fig4        power-off despite stored energy (Figure 4)
//	culpeo fig5        CatNap's feasible schedule failing (Figure 5)
//	culpeo fig6        energy-only V_safe error (Figure 6)
//	culpeo tbl3        the evaluation load catalogue (Table III)
//	culpeo fig10       V_safe error, all estimators (Figure 10)
//	culpeo fig11       real-peripheral validation (Figure 11)
//	culpeo fig12       full-application event capture (Figure 12)
//	culpeo fig13       capture vs event rate (Figure 13)
//	culpeo decoupling  decoupling-capacitance sweep (Section II-D)
//	culpeo ablations   design-choice ablations (timestep, ADC bits, ISR period)
//	culpeo charact     power-system impedance characterization (Section IV-B)
//	culpeo reprofile   re-profiling under changing harvest (Section V-B)
//	culpeo intermittent  intermittent-execution gates + task division (Section I/III)
//	culpeo futurework  §IX extensions: charge-state typing, probabilistic bounds
//	culpeo all         everything above
//
// Flags: -csv emits CSV instead of aligned text; -horizon and -trials trim
// the application experiments; -points dumps Figure 3's full point cloud.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"culpeo/internal/expt"
)

func main() {
	fs := flag.NewFlagSet("culpeo", flag.ExitOnError)
	csv := fs.Bool("csv", false, "emit CSV instead of text tables")
	horizon := fs.Float64("horizon", 0, "application experiment horizon in seconds (0 = paper's 300 s)")
	trials := fs.Int("trials", 0, "application experiment trials (0 = paper's 3)")
	points := fs.Bool("points", false, "with fig3: dump the full point cloud")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: culpeo [flags] <experiment>\n\nexperiments: fig1b fig3 fig4 fig5 fig6 tbl3 fig10 fig11 fig12 fig13 decoupling ablations charact reprofile intermittent futurework all\n\nflags:\n")
		fs.PrintDefaults()
	}
	args := os.Args[1:]
	// Allow "culpeo fig10 -csv" as well as "culpeo -csv fig10".
	var cmds []string
	var flagArgs []string
	for _, a := range args {
		if len(a) > 0 && a[0] == '-' {
			flagArgs = append(flagArgs, a)
		} else {
			cmds = append(cmds, a)
		}
	}
	if err := fs.Parse(flagArgs); err != nil {
		os.Exit(2)
	}
	if len(cmds) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	out := os.Stdout
	opt := expt.Fig12Opts{Horizon: *horizon, Trials: *trials}
	for _, cmd := range cmds {
		if err := run(out, cmd, *csv, *points, opt); err != nil {
			fmt.Fprintf(os.Stderr, "culpeo %s: %v\n", cmd, err)
			os.Exit(1)
		}
	}
}

func emit(w io.Writer, t *expt.Table, csv bool) error {
	if csv {
		return t.CSV(w)
	}
	return t.Render(w)
}

func run(w io.Writer, cmd string, csv, points bool, opt expt.Fig12Opts) error {
	switch cmd {
	case "fig1b":
		r, err := expt.Fig1b()
		if err != nil {
			return err
		}
		return emit(w, r.Table(), csv)
	case "fig3":
		r := expt.Fig3()
		if points {
			return emit(w, r.Points(), csv)
		}
		return emit(w, r.Table(), csv)
	case "fig4":
		r, err := expt.Fig4()
		if err != nil {
			return err
		}
		return emit(w, r.Table(), csv)
	case "fig5":
		r, err := expt.Fig5()
		if err != nil {
			return err
		}
		return emit(w, r.Table(), csv)
	case "fig6":
		rows, err := expt.Fig6()
		if err != nil {
			return err
		}
		return emit(w, expt.Fig6Table(rows), csv)
	case "tbl3":
		return emit(w, expt.Tbl3Table(expt.Tbl3()), csv)
	case "fig10":
		rows, err := expt.Fig10()
		if err != nil {
			return err
		}
		return emit(w, expt.Fig10Table(rows), csv)
	case "fig11":
		rows, err := expt.Fig11()
		if err != nil {
			return err
		}
		return emit(w, expt.Fig11Table(rows), csv)
	case "fig12":
		rows, err := expt.Fig12(opt)
		if err != nil {
			return err
		}
		return emit(w, expt.Fig12Table(rows), csv)
	case "fig13":
		rows, err := expt.Fig13(opt)
		if err != nil {
			return err
		}
		return emit(w, expt.Fig13Table(rows), csv)
	case "decoupling":
		rows, err := expt.Decoupling()
		if err != nil {
			return err
		}
		return emit(w, expt.DecouplingTable(rows), csv)
	case "ablations":
		ts, err := expt.TimestepSweep()
		if err != nil {
			return err
		}
		if err := emit(w, expt.TimestepTable(ts), csv); err != nil {
			return err
		}
		ab, err := expt.ADCBitsSweep()
		if err != nil {
			return err
		}
		if err := emit(w, expt.ADCBitsTable(ab), csv); err != nil {
			return err
		}
		ip, err := expt.ISRPeriodSweep()
		if err != nil {
			return err
		}
		if err := emit(w, expt.ISRPeriodTable(ip), csv); err != nil {
			return err
		}
		el, err := expt.ESRLossSweep()
		if err != nil {
			return err
		}
		return emit(w, expt.ESRLossTable(el), csv)
	case "reprofile":
		rows, err := expt.Reprofile()
		if err != nil {
			return err
		}
		return emit(w, expt.ReprofileTable(rows), csv)
	case "intermittent":
		rows, err := expt.Intermittent(60)
		if err != nil {
			return err
		}
		if err := emit(w, expt.IntermittentTable(rows), csv); err != nil {
			return err
		}
		dec, err := expt.Decompose(120)
		if err != nil {
			return err
		}
		return emit(w, expt.DecomposeTable(dec), csv)
	case "futurework":
		ct, err := expt.ChargeTypes()
		if err != nil {
			return err
		}
		if err := emit(w, ct.Table(), csv); err != nil {
			return err
		}
		pr, err := expt.Probabilistic()
		if err != nil {
			return err
		}
		return emit(w, expt.ProbTable(pr), csv)
	case "charact":
		rows, err := expt.Charact()
		if err != nil {
			return err
		}
		return emit(w, expt.CharactTable(rows), csv)
	case "all":
		for _, c := range []string{
			"fig1b", "fig3", "fig4", "fig5", "fig6", "tbl3",
			"fig10", "fig11", "fig12", "fig13", "decoupling", "ablations",
			"charact", "reprofile", "intermittent", "futurework",
		} {
			if err := run(w, c, csv, points, opt); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

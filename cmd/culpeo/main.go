// Command culpeo regenerates the paper's tables and figures from the
// simulation substrate. Each subcommand corresponds to one element of the
// evaluation:
//
//	culpeo fig1b       ESR drop and rebound decomposition (Figure 1b)
//	culpeo fig3        capacitor technology sweep (Figure 3)
//	culpeo fig4        power-off despite stored energy (Figure 4)
//	culpeo fig5        CatNap's feasible schedule failing (Figure 5)
//	culpeo fig6        energy-only V_safe error (Figure 6)
//	culpeo tbl3        the evaluation load catalogue (Table III)
//	culpeo fig10       V_safe error, all estimators (Figure 10)
//	culpeo fig11       real-peripheral validation (Figure 11)
//	culpeo fig12       full-application event capture (Figure 12)
//	culpeo fig13       capture vs event rate (Figure 13)
//	culpeo decoupling  decoupling-capacitance sweep (Section II-D)
//	culpeo ablations   design-choice ablations (timestep, ADC bits, ISR period)
//	culpeo charact     power-system impedance characterization (Section IV-B)
//	culpeo reprofile   re-profiling under changing harvest (Section V-B)
//	culpeo intermittent  intermittent-execution gates + task division (Section I/III)
//	culpeo soak        robustness soak: dispatch gates × injected faults
//	culpeo futurework  §IX extensions: charge-state typing, probabilistic bounds
//	culpeo bench       record the performance trajectory to BENCH_culpeo.json
//	culpeo benchcheck  validate the committed BENCH_culpeo.json artifact
//	culpeo loadtest    hammer the culpeod HTTP service and report throughput
//	culpeo chaos       deterministic resilience soak: culpeod behind fault proxies
//	culpeo shardsoak   sharded-tier lifecycle soak: kill/leave/rejoin/drain a shard
//	culpeo streamtest  sessionized streaming soak: 100k device lifecycles behind flapping links
//	culpeo crashtest   crash-chaos soak: kill -9 the journaled culpeod and verify bit-exact recovery
//	culpeo all         everything above except bench/benchcheck/loadtest/chaos/shardsoak/streamtest/crashtest
//
// Flags: -csv emits CSV instead of aligned text; -horizon and -trials trim
// the application experiments; -points dumps Figure 3's full point cloud;
// -workers bounds the parallel sweep pool (0 = GOMAXPROCS); -fast switches
// the simulations onto the analytic segment-advance stepper (within a
// millivolt of the exact stepper but not bit-identical — golden outputs are
// produced without it); -batch routes ground-truth searches through the SoA
// lockstep batch stepper (bit-identical to the scalar exact path, so golden
// outputs are unchanged); -cpuprofile/-memprofile write runtime/pprof
// profiles. Interrupting the process (Ctrl-C) cancels in-flight sweeps.
//
// loadtest drives POST /v1/vsafe with -concurrency closed-loop clients for
// -duration against -addr (empty self-hosts an in-process server over real
// loopback HTTP) and prints throughput with p50/p99 latency; -record merges
// the result into the -benchout artifact as its "serving" section. With
// -shards N it instead boots N in-process culpeod shards behind a
// rendezvous router and measures routed throughput on a fixed working set;
// -shardsweep runs the 1/4/8 scaling sweep, and -record then merges the
// rows into the artifact's "shard_scaling" section.
//
// benchcheck validates the committed artifact; with -against BASELINE it
// additionally compares -benchout against BASELINE and fails on any
// matching measurement regressed beyond -tolerance (default 15%).
// Comparisons are normalized by the calibration spin recorded in each
// report, cancelling machine-speed differences between runs. With
// -fresh N it ignores -benchout and instead collects live measurements,
// retrying up to N attempts before failing — the `make benchgate`
// regression gate.
//
// chaos boots two in-process culpeod servers behind deterministic
// netchaos fault proxies (503 bursts, mid-headers resets, blackholes,
// flap cycles), drives a mixed workload through the resilient client
// pool, and gates on 100% eventual success, bit-exact parity with the
// library path, zero server panics and a reproducible transition log;
// -reduced runs the smaller `make chaos` workload.
//
// shardsoak boots three culpeod shards behind the same fault proxies,
// routes a mixed workload by (power-model, trace) fingerprint, and walks
// the fleet through a partition, a hard kill, a topology leave and
// rejoin, and a drain/readmit cycle — gated on 100% eventual success,
// bit-exact parity, zero panics and a reproducible transition log;
// -reduced runs the smaller `make shard` schedule.
//
// streamtest boots two in-process culpeod servers behind flapping
// netchaos proxies and drives 100,000 device sessions through the full
// /v1/stream lifecycle — open, stream observations, detach, resume,
// close — gated on zero failed sessions, bit-exact estimate/margin/HTTP
// parity, bounded heap per resident session and zero panics. -reduced
// runs the 2,000-session `make stream` configuration; -sessions overrides
// the count; -record merges the result into the -benchout artifact as its
// "stream" section (full scale only).
//
// crashtest builds the real culpeod binary, boots it with a write-ahead
// session journal, drives seeded device streams through client.Stream,
// SIGKILLs it and restarts it against the same directory — 20 cycles,
// three same-seed runs — gated on zero lost acked observations, zero
// duplicated folds, bit-exact fold and margin parity, bit-identical
// terminal replays, idempotent close retries and byte-identical event
// logs across the runs. -reduced runs the 5-cycle `make crash`
// configuration; -record (full scale only) measures the 100k-session
// recovery benchmark and merges it into the -benchout artifact as its
// "recovery" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"time"

	"culpeo/internal/benchrun"
	"culpeo/internal/expt"
	"culpeo/internal/prof"
	"culpeo/internal/serve"
	"culpeo/internal/shard"
	"culpeo/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with its dependencies injected, so the error paths are
// testable without exec'ing the binary.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("culpeo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csv := fs.Bool("csv", false, "emit CSV instead of text tables")
	horizon := fs.Float64("horizon", 0, "application experiment horizon in seconds (0 = paper's 300 s)")
	trials := fs.Int("trials", 0, "application experiment trials (0 = paper's 3)")
	points := fs.Bool("points", false, "with fig3: dump the full point cloud")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	fast := fs.Bool("fast", false, "use the analytic fast-path stepper (sub-mV of exact, not bit-identical)")
	batch := fs.Bool("batch", false, "route ground-truth searches through the SoA lockstep batch stepper (bit-identical on the exact path)")
	warm := fs.Bool("warm", true, "warm-start chained ground-truth bisections from the previous grid point's bracket (within 5 mV of cold; -warm=false restores bit-identical sweeps)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	benchout := fs.String("benchout", "BENCH_culpeo.json", "bench/benchcheck/loadtest: the report artifact path")
	ltAddr := fs.String("addr", "", "loadtest: target base URL (empty = self-hosted in-process server)")
	ltDuration := fs.Duration("duration", 3*time.Second, "loadtest: measurement window")
	ltConcurrency := fs.Int("concurrency", 0, "loadtest: closed-loop clients (0 = 4×GOMAXPROCS)")
	ltRecord := fs.Bool("record", false, "loadtest/streamtest/crashtest: merge the run's stats into the -benchout artifact")
	ltShards := fs.Int("shards", 0, "loadtest: boot this many culpeod shards behind a rendezvous router (0 = single-node HTTP loadtest)")
	ltSweep := fs.Bool("shardsweep", false, "loadtest: run the sharded rig at 1, 4 and 8 shards and report scaling")
	against := fs.String("against", "", "benchcheck: baseline artifact to compare -benchout against (regression gate)")
	tolerance := fs.Float64("tolerance", 0.15, "benchcheck: allowed fractional regression vs -against")
	fresh := fs.Int("fresh", 0, "benchcheck: with -against, collect fresh measurements instead of reading -benchout, retrying up to this many attempts")
	chaosReduced := fs.Bool("reduced", false, "chaos/shardsoak/streamtest/crashtest: run the reduced workload (the `make chaos` / `make shard` / `make stream` / `make crash` configuration)")
	stSessions := fs.Int("sessions", 0, "streamtest: device-session count (0 = 100000 full, 2000 reduced)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: culpeo [flags] <experiment>\n\nexperiments: fig1b fig3 fig4 fig5 fig6 tbl3 fig10 fig11 fig12 fig13 decoupling ablations charact reprofile intermittent soak futurework bench benchcheck loadtest chaos shardsoak streamtest crashtest all\n\nflags:\n")
		fs.PrintDefaults()
	}
	// Allow "culpeo fig10 -csv" as well as "culpeo -csv fig10".
	cmds, flagArgs := splitArgs(fs, args)
	if err := fs.Parse(flagArgs); err != nil {
		return 2
	}
	if len(cmds) == 0 {
		fs.Usage()
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "culpeo: -workers must be >= 0, got %d\n", *workers)
		return 2
	}
	if *workers > 0 {
		ctx = sweep.WithWorkers(ctx, *workers)
	}
	if *fast {
		ctx = expt.WithFast(ctx)
	}
	if *batch {
		ctx = expt.WithBatch(ctx)
	}
	if *warm {
		ctx = expt.WithWarm(ctx)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(stderr, "culpeo:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "culpeo: profile:", err)
		}
	}()

	opt := expt.Fig12Opts{Horizon: *horizon, Trials: *trials}
	for _, cmd := range cmds {
		var err error
		if cmd == "loadtest" && (*ltSweep || *ltShards > 0) {
			err = shardLoadTest(ctx, stdout, *ltShards, *ltSweep, *ltConcurrency, *ltRecord, *benchout)
		} else if cmd == "loadtest" {
			err = loadtest(ctx, stdout, *ltAddr, *ltDuration, *ltConcurrency, *ltRecord, *benchout)
		} else if cmd == "chaos" {
			err = chaos(ctx, stdout, *chaosReduced)
		} else if cmd == "shardsoak" {
			err = shardsoak(ctx, stdout, *chaosReduced)
		} else if cmd == "streamtest" {
			err = streamtest(ctx, stdout, stderr, *chaosReduced, *stSessions, *ltRecord, *benchout)
		} else if cmd == "crashtest" {
			err = crashtest(ctx, stdout, stderr, *chaosReduced, *ltRecord, *benchout)
		} else if cmd == "benchcheck" && *against != "" && *fresh > 0 {
			err = benchgateFresh(stdout, *against, *tolerance, *fresh)
		} else if cmd == "benchcheck" && *against != "" {
			err = benchgate(stdout, *benchout, *against, *tolerance)
		} else {
			err = run(ctx, stdout, cmd, *csv, *points, *benchout, opt)
		}
		if err != nil {
			fmt.Fprintf(stderr, "culpeo %s: %v\n", cmd, err)
			return 1
		}
	}
	return 0
}

// loadtest drives the serving load generator and optionally records the
// result as the bench artifact's serving section.
func loadtest(ctx context.Context, w io.Writer, addr string, duration time.Duration, concurrency int, record bool, benchout string) error {
	res, err := serve.LoadTest(ctx, serve.LoadTestOptions{
		URL:         addr,
		Duration:    duration,
		Concurrency: concurrency,
	})
	if err != nil {
		return err
	}
	target := addr
	if res.SelfHosted {
		target = "self-hosted loopback"
	}
	fmt.Fprintf(w, "loadtest: %s, %d clients, %.2f s\n", target, res.Concurrency, res.DurationSec)
	fmt.Fprintf(w, "loadtest: %d requests (%d errors, %d backpressure): %.0f req/s, p50 %.3f ms, p99 %.3f ms, mean %.3f ms\n",
		res.Requests, res.Errors, res.Backpressure, res.Throughput, res.P50Ms, res.P99Ms, res.MeanMs)
	if res.SelfHosted {
		fmt.Fprintf(w, "loadtest: V_safe cache hit rate %.1f%%\n", res.CacheHitRate*100)
	}
	if cs := res.CacheStats; cs != nil {
		fmt.Fprintf(w, "loadtest: miss path: %d inflight waits, %d coalesced; warm bisection: %d hits, %d fallbacks; batch dedup: %d\n",
			cs.InflightWaits, cs.Coalesced, cs.WarmHits, cs.WarmFallbacks, res.BatchDeduped)
	}
	if !record {
		return nil
	}
	rep, err := benchrun.Read(benchout)
	if err != nil {
		return fmt.Errorf("-record needs a valid artifact (run `culpeo bench` first): %w", err)
	}
	rep.Serving = &benchrun.ServingStats{
		ThroughputRPS: res.Throughput,
		P50Ms:         res.P50Ms,
		P99Ms:         res.P99Ms,
		MeanMs:        res.MeanMs,
		Requests:      res.Requests,
		Concurrency:   res.Concurrency,
		DurationSec:   res.DurationSec,
		CacheHitRate:  res.CacheHitRate,
	}
	if err := benchrun.Write(benchout, rep); err != nil {
		return err
	}
	fmt.Fprintf(w, "loadtest: recorded serving stats into %s\n", benchout)
	return nil
}

// shardLoadTest drives the sharded throughput rig: one run at -shards
// nodes, or the 1/4/8 scaling sweep with -shardsweep; -record merges the
// sweep into the bench artifact's shard_scaling section.
func shardLoadTest(ctx context.Context, w io.Writer, shards int, sweepAll bool, concurrency int, record bool, benchout string) error {
	counts := []int{shards}
	if sweepAll {
		counts = []int{1, 4, 8}
	}
	opt := shard.LoadTestOptions{Concurrency: concurrency}
	opt2 := opt // keep zero fields so the rig's defaults are reported
	(&opt2).Defaults()
	rows, err := shard.Scaling(ctx, counts, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "loadtest: sharded rig, working set %d, per-shard cache %d, %d clients\n",
		opt2.WorkingSet, opt2.PerShardCache, opt2.Concurrency)
	base := rows[0].ThroughputRPS
	for _, r := range rows {
		fmt.Fprintf(w, "loadtest: %d shard(s): %d requests (%d failures) in %.2f s: %.0f req/s, cache hit rate %.1f%%, %d evictions (%.2fx vs %d-shard)\n",
			r.Shards, r.Requests, r.Failures, r.DurationSec, r.ThroughputRPS, r.HitRate*100, r.Evictions, r.ThroughputRPS/base, rows[0].Shards)
	}
	if !record {
		return nil
	}
	if !sweepAll || rows[0].Shards != 1 {
		return fmt.Errorf("-record needs the full -shardsweep (the artifact's first row is the 1-shard baseline)")
	}
	rep, err := benchrun.Read(benchout)
	if err != nil {
		return fmt.Errorf("-record needs a valid artifact (run `culpeo bench` first): %w", err)
	}
	sc := &benchrun.ShardScaling{
		WorkingSet:    opt2.WorkingSet,
		PerShardCache: opt2.PerShardCache,
		Concurrency:   opt2.Concurrency,
	}
	for _, r := range rows {
		sc.Rows = append(sc.Rows, benchrun.ShardRow{
			Shards:        r.Shards,
			Requests:      r.Requests,
			ThroughputRPS: r.ThroughputRPS,
			CacheHitRate:  r.HitRate,
			Evictions:     r.Evictions,
			SpeedupVs1:    r.ThroughputRPS / base,
		})
	}
	rep.ShardScaling = sc
	if err := benchrun.Write(benchout, rep); err != nil {
		return err
	}
	fmt.Fprintf(w, "loadtest: recorded shard scaling into %s\n", benchout)
	return nil
}

// benchgate is benchcheck with -against: validate both artifacts, then
// fail on any matching measurement regressed beyond the tolerance.
func benchgate(w io.Writer, current, baseline string, tol float64) error {
	cur, err := benchrun.Read(current)
	if err != nil {
		return err
	}
	base, err := benchrun.Read(baseline)
	if err != nil {
		return err
	}
	if err := benchrun.Compare(cur, base, tol); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchcheck: %s within %.0f%% of %s (%d benchmarks compared)\n",
		current, tol*100, baseline, len(cur.Benchmarks))
	return nil
}

// benchgateFresh is the regression gate against freshly collected
// measurements: collect, compare, retry up to n attempts. A genuine
// regression is code-relative — the calibration spin cancels whole-machine
// speed swings — and fails every attempt; a host slow phase that arrives
// mid-suite (after the spin ran) skews one attempt and not the next. Only
// exhausting every attempt fails the gate, with the last violations as
// the error.
func benchgateFresh(w io.Writer, baseline string, tol float64, n int) error {
	base, err := benchrun.Read(baseline)
	if err != nil {
		return err
	}
	var last error
	for attempt := 1; attempt <= n; attempt++ {
		cur, err := benchrun.Collect()
		if err != nil {
			return err
		}
		if last = benchrun.Compare(cur, base, tol); last == nil {
			fmt.Fprintf(w, "benchcheck: fresh run within %.0f%% of %s (%d benchmarks compared, attempt %d/%d)\n",
				tol*100, baseline, len(cur.Benchmarks), attempt, n)
			return nil
		}
		fmt.Fprintf(w, "benchcheck: attempt %d/%d: %v\n", attempt, n, last)
	}
	return last
}

// chaos runs the deterministic resilience soak and prints its report; a
// failed gate is the command's error (non-zero exit).
func chaos(ctx context.Context, w io.Writer, reduced bool) error {
	t0 := time.Now()
	rep, err := expt.Chaos(ctx, expt.ChaosOpts{Reduced: reduced})
	if err != nil {
		return err
	}
	if err := rep.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nchaos: soak completed in %.1f s\n", time.Since(t0).Seconds())
	if err := rep.Gate(); err != nil {
		return err
	}
	fmt.Fprintln(w, "chaos: all gates passed (eventual success, bit-exact parity, zero panics)")
	return nil
}

// shardsoak runs the sharded-tier lifecycle soak and prints its report; a
// failed gate is the command's error (non-zero exit).
func shardsoak(ctx context.Context, w io.Writer, reduced bool) error {
	t0 := time.Now()
	rep, err := expt.ShardSoak(ctx, expt.ShardSoakOpts{Reduced: reduced})
	if err != nil {
		return err
	}
	if err := rep.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nshardsoak: soak completed in %.1f s\n", time.Since(t0).Seconds())
	if err := rep.Gate(); err != nil {
		return err
	}
	fmt.Fprintln(w, "shardsoak: all gates passed (eventual success, bit-exact parity, zero panics, full lifecycle)")
	return nil
}

// crashtest runs the crash-chaos soak three times with the same seed and
// requires byte-identical event logs on top of each run's own gates; a
// failed gate or a log divergence is the command's error (non-zero exit).
// With -record (full scale only) it then measures the 100k-session
// recovery benchmark and merges the result into the bench artifact's
// "recovery" section.
func crashtest(ctx context.Context, w, progress io.Writer, reduced bool, record bool, benchout string) error {
	t0 := time.Now()
	const runs = 3
	var firstLog []string
	for run := 1; run <= runs; run++ {
		fmt.Fprintf(progress, "crashtest: run %d/%d\n", run, runs)
		rep, err := expt.CrashSoak(ctx, expt.CrashOpts{Reduced: reduced})
		if err != nil {
			return err
		}
		if run == 1 {
			if err := rep.Render(w); err != nil {
				return err
			}
			if err := rep.Gate(); err != nil {
				return err
			}
			firstLog = rep.Log
			continue
		}
		if err := rep.Gate(); err != nil {
			return fmt.Errorf("run %d/%d: %w", run, runs, err)
		}
		if len(rep.Log) != len(firstLog) {
			return fmt.Errorf("run %d/%d: event log has %d lines, run 1 had %d", run, runs, len(rep.Log), len(firstLog))
		}
		for i := range firstLog {
			if rep.Log[i] != firstLog[i] {
				return fmt.Errorf("run %d/%d: event log diverged at line %d:\n run 1: %s\n run %d: %s",
					run, runs, i, firstLog[i], run, rep.Log[i])
			}
		}
	}
	fmt.Fprintf(w, "\ncrashtest: %d runs completed in %.1f s\n", runs, time.Since(t0).Seconds())
	fmt.Fprintln(w, "crashtest: all gates passed (zero lost acked obs, zero dup folds, bit-exact recovery, byte-identical logs)")
	if !record {
		return nil
	}
	if reduced {
		return fmt.Errorf("-record needs the full-scale soak (drop -reduced)")
	}
	res, err := expt.RecoveryBench(ctx, 100_000, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "crashtest: recovery bench: %d sessions (%d obs each) recovered in %.1f ms (%.0f sessions/s), snapshot %d bytes, append %.0f ns/op\n",
		res.Sessions, res.ObsPerSession, res.RecoverMs, res.SessionsPerSec, res.SnapshotBytes, res.AppendNsPerOp)
	art, err := benchrun.Read(benchout)
	if err != nil {
		return fmt.Errorf("-record needs a valid artifact (run `culpeo bench` first): %w", err)
	}
	art.Recovery = &benchrun.RecoveryStats{
		Name:           fmt.Sprintf("recovery/sessions-%dk", res.Sessions/1000),
		Sessions:       res.Sessions,
		SnapshotBytes:  res.SnapshotBytes,
		RecoverMs:      res.RecoverMs,
		SessionsPerSec: res.SessionsPerSec,
		AppendNsPerOp:  res.AppendNsPerOp,
	}
	if err := benchrun.Write(benchout, art); err != nil {
		return err
	}
	fmt.Fprintf(w, "crashtest: recorded recovery stats into %s\n", benchout)
	return nil
}

// streamtest runs the sessionized streaming soak and prints its report; a
// failed gate is the command's error (non-zero exit). With -record the
// result becomes the bench artifact's stream section — full scale only,
// so the committed figure always describes the 100k configuration.
func streamtest(ctx context.Context, w, progress io.Writer, reduced bool, sessions int, record bool, benchout string) error {
	t0 := time.Now()
	rep, err := expt.StreamSoak(ctx, expt.StreamOpts{
		Reduced:  reduced,
		Sessions: sessions,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(progress, "streamtest: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if err := rep.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstreamtest: soak completed in %.1f s\n", time.Since(t0).Seconds())
	if err := rep.Gate(); err != nil {
		return err
	}
	fmt.Fprintln(w, "streamtest: all gates passed (zero failed sessions, bit-exact parity, bounded heap, zero panics)")
	if !record {
		return nil
	}
	if reduced {
		return fmt.Errorf("-record needs the full-scale soak (drop -reduced)")
	}
	res := rep.Result
	art, err := benchrun.Read(benchout)
	if err != nil {
		return fmt.Errorf("-record needs a valid artifact (run `culpeo bench` first): %w", err)
	}
	art.Stream = &benchrun.StreamStats{
		Name:                    fmt.Sprintf("stream/sessions-%dk", res.Sessions/1000),
		Sessions:                res.Sessions,
		Events:                  res.Events,
		EventsPerSec:            res.EventsPerSec,
		P99EventMs:              res.P99EventMs,
		PeakHeapPerSessionBytes: res.HeapPerSessionBytes,
		DurationSec:             res.DurationSec,
		Workers:                 rep.Workers,
	}
	if err := benchrun.Write(benchout, art); err != nil {
		return err
	}
	fmt.Fprintf(w, "streamtest: recorded stream stats into %s\n", benchout)
	return nil
}

// splitArgs separates experiment names from flags so both orders work. A
// non-boolean flag given as "-horizon 20" keeps its space-separated value.
func splitArgs(fs *flag.FlagSet, args []string) (cmds, flags []string) {
	isBool := func(name string) bool {
		f := fs.Lookup(name)
		if f == nil {
			return true // unknown flag: let Parse report it
		}
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		return ok && b.IsBoolFlag()
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) == 0 || a[0] != '-' {
			cmds = append(cmds, a)
			continue
		}
		flags = append(flags, a)
		name := strings.TrimLeft(a, "-")
		if strings.ContainsRune(name, '=') {
			continue
		}
		if !isBool(name) && i+1 < len(args) {
			i++
			flags = append(flags, args[i])
		}
	}
	return cmds, flags
}

func emit(w io.Writer, t *expt.Table, csv bool) error {
	if csv {
		return t.CSV(w)
	}
	return t.Render(w)
}

// benchTable renders the bench report for the terminal; the JSON artifact
// is the canonical record.
func benchTable(rep *benchrun.Report) *expt.Table {
	t := &expt.Table{
		Title:  "Performance trajectory (BENCH_culpeo.json)",
		Header: []string{"benchmark", "ns/op", "B/op", "allocs/op", "iters"},
		Caption: fmt.Sprintf(
			"fast-path speedup %.2fx on the end-to-end sweep; batch speedup %.2fx on 64 lockstep lanes; warm-sweep speedup %.2fx; coalesce speedup %.2fx on a same-key miss storm; V_safe cache %d hits / %d misses (%.1f%% hit rate); %s %s/%s, %d CPUs.",
			rep.FastPathSpeedup, rep.BatchSpeedup, rep.WarmSweepSpeedup, rep.CoalesceSpeedup,
			rep.VSafeCache.Hits, rep.VSafeCache.Misses,
			rep.VSafeCache.HitRate*100, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.NumCPU),
	}
	for _, b := range rep.Benchmarks {
		t.Add(b.Name, fmt.Sprintf("%.0f", b.NsPerOp), fmt.Sprintf("%d", b.BytesPerOp),
			fmt.Sprintf("%d", b.AllocsPerOp), fmt.Sprintf("%d", b.Iterations))
	}
	return t
}

func run(ctx context.Context, w io.Writer, cmd string, csv, points bool, benchout string, opt expt.Fig12Opts) error {
	switch cmd {
	case "bench":
		rep, err := benchrun.Collect()
		if err != nil {
			return err
		}
		// A bench run replaces the micro-benchmark section but must not
		// discard the sections loadtest -record merged earlier.
		if prev, err := benchrun.Read(benchout); err == nil {
			rep.Serving = prev.Serving
			rep.ShardScaling = prev.ShardScaling
			rep.Stream = prev.Stream
			rep.Recovery = prev.Recovery
		}
		if err := benchrun.Write(benchout, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", benchout)
		return emit(w, benchTable(rep), csv)
	case "benchcheck":
		rep, err := benchrun.Read(benchout)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "benchcheck: %s ok (%d benchmarks, %.2fx fast-path speedup, %.2fx batch speedup, %.2fx warm-sweep speedup, %.2fx coalesce speedup, %.0f%% cache hit rate)\n",
			benchout, len(rep.Benchmarks), rep.FastPathSpeedup, rep.BatchSpeedup,
			rep.WarmSweepSpeedup, rep.CoalesceSpeedup, rep.VSafeCache.HitRate*100)
		if s := rep.Serving; s != nil {
			fmt.Fprintf(w, "benchcheck: serving %.0f req/s, p50 %.3f ms, p99 %.3f ms over %d clients\n",
				s.ThroughputRPS, s.P50Ms, s.P99Ms, s.Concurrency)
		}
		if sc := rep.ShardScaling; sc != nil {
			for _, row := range sc.Rows {
				fmt.Fprintf(w, "benchcheck: %d shard(s): %.0f req/s (%.2fx vs 1), cache hit rate %.1f%%\n",
					row.Shards, row.ThroughputRPS, row.SpeedupVs1, row.CacheHitRate*100)
			}
		}
		if st := rep.Stream; st != nil {
			fmt.Fprintf(w, "benchcheck: %s: %d sessions, %.0f events/s, p99 event %.3f ms, %.0f B/session peak heap\n",
				st.Name, st.Sessions, st.EventsPerSec, st.P99EventMs, st.PeakHeapPerSessionBytes)
		}
		if rc := rep.Recovery; rc != nil {
			fmt.Fprintf(w, "benchcheck: %s: recovered in %.1f ms (%.0f sessions/s), append %.0f ns/op\n",
				rc.Name, rc.RecoverMs, rc.SessionsPerSec, rc.AppendNsPerOp)
		}
		return nil
	case "fig1b":
		r, err := expt.Fig1b()
		if err != nil {
			return err
		}
		return emit(w, r.Table(), csv)
	case "fig3":
		r, err := expt.Fig3(ctx)
		if err != nil {
			return err
		}
		if points {
			return emit(w, r.Points(), csv)
		}
		return emit(w, r.Table(), csv)
	case "fig4":
		r, err := expt.Fig4()
		if err != nil {
			return err
		}
		return emit(w, r.Table(), csv)
	case "fig5":
		r, err := expt.Fig5(ctx)
		if err != nil {
			return err
		}
		return emit(w, r.Table(), csv)
	case "fig6":
		rows, err := expt.Fig6Ctx(ctx)
		if err != nil {
			return err
		}
		return emit(w, expt.Fig6Table(rows), csv)
	case "tbl3":
		rows, err := expt.Tbl3(ctx)
		if err != nil {
			return err
		}
		return emit(w, expt.Tbl3Table(rows), csv)
	case "fig10":
		rows, err := expt.Fig10(ctx)
		if err != nil {
			return err
		}
		return emit(w, expt.Fig10Table(rows), csv)
	case "fig11":
		rows, err := expt.Fig11(ctx)
		if err != nil {
			return err
		}
		return emit(w, expt.Fig11Table(rows), csv)
	case "fig12":
		rows, err := expt.Fig12(ctx, opt)
		if err != nil {
			return err
		}
		return emit(w, expt.Fig12Table(rows), csv)
	case "fig13":
		rows, err := expt.Fig13(ctx, opt)
		if err != nil {
			return err
		}
		return emit(w, expt.Fig13Table(rows), csv)
	case "decoupling":
		rows, err := expt.Decoupling()
		if err != nil {
			return err
		}
		return emit(w, expt.DecouplingTable(rows), csv)
	case "ablations":
		ts, err := expt.TimestepSweep(ctx)
		if err != nil {
			return err
		}
		if err := emit(w, expt.TimestepTable(ts), csv); err != nil {
			return err
		}
		ab, err := expt.ADCBitsSweep(ctx)
		if err != nil {
			return err
		}
		if err := emit(w, expt.ADCBitsTable(ab), csv); err != nil {
			return err
		}
		ip, err := expt.ISRPeriodSweep(ctx)
		if err != nil {
			return err
		}
		if err := emit(w, expt.ISRPeriodTable(ip), csv); err != nil {
			return err
		}
		el, err := expt.ESRLossSweep(ctx)
		if err != nil {
			return err
		}
		return emit(w, expt.ESRLossTable(el), csv)
	case "reprofile":
		rows, err := expt.ReprofileCtx(ctx)
		if err != nil {
			return err
		}
		return emit(w, expt.ReprofileTable(rows), csv)
	case "intermittent":
		rows, err := expt.Intermittent(ctx, 60)
		if err != nil {
			return err
		}
		if err := emit(w, expt.IntermittentTable(rows), csv); err != nil {
			return err
		}
		dec, err := expt.Decompose(ctx, 120)
		if err != nil {
			return err
		}
		return emit(w, expt.DecomposeTable(dec), csv)
	case "soak":
		rows, err := expt.Soak(ctx, expt.SoakOpts{Horizon: opt.Horizon})
		if err != nil {
			return err
		}
		return emit(w, expt.SoakTable(rows), csv)
	case "futurework":
		ct, err := expt.ChargeTypes()
		if err != nil {
			return err
		}
		if err := emit(w, ct.Table(), csv); err != nil {
			return err
		}
		pr, err := expt.Probabilistic()
		if err != nil {
			return err
		}
		return emit(w, expt.ProbTable(pr), csv)
	case "charact":
		rows, err := expt.Charact()
		if err != nil {
			return err
		}
		return emit(w, expt.CharactTable(rows), csv)
	case "all":
		for _, c := range []string{
			"fig1b", "fig3", "fig4", "fig5", "fig6", "tbl3",
			"fig10", "fig11", "fig12", "fig13", "decoupling", "ablations",
			"charact", "reprofile", "intermittent", "soak", "futurework",
		} {
			if err := run(ctx, w, c, csv, points, benchout, opt); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"culpeo/internal/benchrun"
	"culpeo/internal/expt"
)

func TestRunFastExperiments(t *testing.T) {
	// The cheap subcommands end to end, in both output modes.
	ctx := context.Background()
	opt := expt.Fig12Opts{Horizon: 10, Trials: 1}
	for _, cmd := range []string{"fig1b", "fig3", "fig4", "fig5", "tbl3", "decoupling"} {
		for _, csv := range []bool{false, true} {
			var sb strings.Builder
			if err := run(ctx, &sb, cmd, csv, false, "", opt); err != nil {
				t.Fatalf("%s (csv=%v): %v", cmd, csv, err)
			}
			if sb.Len() == 0 {
				t.Errorf("%s produced no output", cmd)
			}
			if !csv && !strings.Contains(sb.String(), "\n---") && !strings.Contains(sb.String(), "===") {
				t.Errorf("%s text output lacks table framing", cmd)
			}
		}
	}
}

func TestRunFig3Points(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "fig3", true, true, "", expt.Fig12Opts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "volume_mm3,") {
		t.Errorf("point cloud header missing: %q", sb.String()[:40])
	}
	// 2000 parts → 2000 rows + header.
	if n := strings.Count(sb.String(), "\n"); n < 1500 {
		t.Errorf("point cloud rows = %d", n)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "fig99", false, false, "", expt.Fig12Opts{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRealMainErrors drives the binary's error paths end to end: each bad
// invocation must exit non-zero and say something usable on stderr.
func TestRealMainErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr
	}{
		{"no args", nil, 2, "usage: culpeo"},
		{"unknown experiment", []string{"fig99"}, 1, `unknown experiment "fig99"`},
		{"unknown flag", []string{"-bogus", "fig3"}, 2, "flag provided but not defined"},
		{"bad flag value", []string{"-trials", "three", "fig12"}, 2, "invalid value"},
		{"negative workers", []string{"-workers", "-2", "tbl3"}, 2, "-workers must be >= 0"},
		{"flags only, no experiment", []string{"-csv"}, 2, "usage: culpeo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := realMain(context.Background(), tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestRealMainSpaceSeparatedFlagValues covers the fixed arg splitter: a
// non-boolean flag's value may follow as its own argument without being
// mistaken for an experiment name.
func TestRealMainSpaceSeparatedFlagValues(t *testing.T) {
	var stdout, stderr strings.Builder
	code := realMain(context.Background(), []string{"tbl3", "-workers", "2", "-csv"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "load,kind,") {
		t.Errorf("csv output wrong: %q", firstLine(stdout.String()))
	}
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		args      []string
		wantCmds  []string
		wantFlags []string
	}{
		{[]string{"fig12", "-horizon", "20", "-trials", "1"}, []string{"fig12"}, []string{"-horizon", "20", "-trials", "1"}},
		{[]string{"-csv", "fig3", "fig4"}, []string{"fig3", "fig4"}, []string{"-csv"}},
		{[]string{"-horizon=20", "fig12"}, []string{"fig12"}, []string{"-horizon=20"}},
		{[]string{"-workers", "4", "all"}, []string{"all"}, []string{"-workers", "4"}},
	}
	for _, tc := range cases {
		// Mirror realMain's flag-set shape: bools and value flags.
		fs := flag.NewFlagSet("culpeo", flag.ContinueOnError)
		fs.Bool("csv", false, "")
		fs.Bool("points", false, "")
		fs.Float64("horizon", 0, "")
		fs.Int("trials", 0, "")
		fs.Int("workers", 0, "")
		cmds, flags := splitArgs(fs, tc.args)
		if !equalStrings(cmds, tc.wantCmds) || !equalStrings(flags, tc.wantFlags) {
			t.Errorf("splitArgs(%v) = %v, %v; want %v, %v", tc.args, cmds, flags, tc.wantCmds, tc.wantFlags)
		}
	}
}

// TestRunBenchcheck validates the artifact gate: a well-formed report
// passes, a malformed one fails the subcommand. (The bench subcommand
// itself runs the full ~10 s measurement suite, so it is exercised by
// `make bench`, not unit tests.)
func TestRunBenchcheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_culpeo.json")
	rep := &benchrun.Report{
		Schema: benchrun.Schema, GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", NumCPU: 4,
		Benchmarks: []benchrun.Benchmark{
			{Name: "step/single-branch", NsPerOp: 100, Iterations: 10},
			{Name: "step/scalar-64", NsPerOp: 6400, Iterations: 10},
			{Name: "step/batch-64", NsPerOp: 800, Iterations: 10},
			{Name: "misspath/sweep-cold", NsPerOp: 3000, Iterations: 10},
			{Name: "misspath/sweep-warm", NsPerOp: 2000, Iterations: 10},
			{Name: "misspath/miss-direct", NsPerOp: 8000, Iterations: 10},
			{Name: "misspath/miss-coalesced", NsPerOp: 1000, Iterations: 10},
		},
		VSafeCache:       benchrun.CacheStats{Hits: 9, Misses: 1, HitRate: 0.9},
		FastPathSpeedup:  2.5,
		BatchSpeedup:     8.0,
		WarmSweepSpeedup: 1.5,
		CoalesceSpeedup:  8.0,
	}
	if err := benchrun.Write(path, rep); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), &sb, "benchcheck", false, false, path, expt.Fig12Opts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ok") || !strings.Contains(sb.String(), "2.50x") {
		t.Errorf("benchcheck output: %q", sb.String())
	}
	if err := os.WriteFile(path, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &sb, "benchcheck", false, false, path, expt.Fig12Opts{}); err == nil {
		t.Error("benchcheck accepted a malformed artifact")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunSoak drives the robustness-soak subcommand at a trimmed horizon:
// every gate × fault row must render, and the culpeo+adaptive gate must
// report a row for the harsh measurement-chain fault.
func TestRunSoak(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "soak", false, false, "", expt.Fig12Opts{Horizon: 3}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Robustness soak", "energy", "culpeo+adaptive", "adc/harsh", "age/eol"} {
		if !strings.Contains(out, want) {
			t.Errorf("soak output missing %q", want)
		}
	}
	if rows := strings.Count(out, "\n"); rows < 36 {
		t.Errorf("soak table has %d lines, want the full 36-cell matrix", rows)
	}
}

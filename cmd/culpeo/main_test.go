package main

import (
	"strings"
	"testing"

	"culpeo/internal/expt"
)

func TestRunFastExperiments(t *testing.T) {
	// The cheap subcommands end to end, in both output modes.
	opt := expt.Fig12Opts{Horizon: 10, Trials: 1}
	for _, cmd := range []string{"fig1b", "fig3", "fig4", "fig5", "tbl3", "decoupling"} {
		for _, csv := range []bool{false, true} {
			var sb strings.Builder
			if err := run(&sb, cmd, csv, false, opt); err != nil {
				t.Fatalf("%s (csv=%v): %v", cmd, csv, err)
			}
			if sb.Len() == 0 {
				t.Errorf("%s produced no output", cmd)
			}
			if !csv && !strings.Contains(sb.String(), "\n---") && !strings.Contains(sb.String(), "===") {
				t.Errorf("%s text output lacks table framing", cmd)
			}
		}
	}
}

func TestRunFig3Points(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig3", true, true, expt.Fig12Opts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "volume_mm3,") {
		t.Errorf("point cloud header missing: %q", sb.String()[:40])
	}
	// 2000 parts → 2000 rows + header.
	if n := strings.Count(sb.String(), "\n"); n < 1500 {
		t.Errorf("point cloud rows = %d", n)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig99", false, false, expt.Fig12Opts{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

package main

import (
	"testing"
)

func TestPickLoadSynthetic(t *testing.T) {
	p, err := pickLoad("", "25mA", "10ms", "pulse")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.11 { // 10 ms pulse + 100 ms tail
		t.Errorf("pulse duration = %g", p.Duration())
	}
	p, err = pickLoad("", "5mA", "100ms", "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.1 {
		t.Errorf("uniform duration = %g", p.Duration())
	}
}

func TestPickLoadPeripherals(t *testing.T) {
	for _, name := range []string{"gesture", "ble", "mnist", "lora"} {
		p, err := pickLoad(name, "", "", "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Duration() <= 0 {
			t.Errorf("%s degenerate", name)
		}
	}
}

func TestPickLoadErrors(t *testing.T) {
	if _, err := pickLoad("warpdrive", "", "", ""); err == nil {
		t.Error("unknown peripheral accepted")
	}
	if _, err := pickLoad("", "notanumber", "10ms", "pulse"); err == nil {
		t.Error("bad current accepted")
	}
	if _, err := pickLoad("", "5mA", "xyz", "pulse"); err == nil {
		t.Error("bad duration accepted")
	}
	if _, err := pickLoad("", "5mA", "10ms", "triangle"); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 1, 3) != 3 || clamp(0, 1, 3) != 1 || clamp(2, 1, 3) != 2 {
		t.Error("clamp wrong")
	}
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPickLoadSynthetic(t *testing.T) {
	p, err := pickLoad("", "25mA", "10ms", "pulse")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.11 { // 10 ms pulse + 100 ms tail
		t.Errorf("pulse duration = %g", p.Duration())
	}
	p, err = pickLoad("", "5mA", "100ms", "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.1 {
		t.Errorf("uniform duration = %g", p.Duration())
	}
}

func TestPickLoadPeripherals(t *testing.T) {
	for _, name := range []string{"gesture", "ble", "mnist", "lora"} {
		p, err := pickLoad(name, "", "", "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Duration() <= 0 {
			t.Errorf("%s degenerate", name)
		}
	}
}

func TestPickLoadErrors(t *testing.T) {
	if _, err := pickLoad("warpdrive", "", "", ""); err == nil {
		t.Error("unknown peripheral accepted")
	}
	if _, err := pickLoad("", "notanumber", "10ms", "pulse"); err == nil {
		t.Error("bad current accepted")
	}
	if _, err := pickLoad("", "5mA", "xyz", "pulse"); err == nil {
		t.Error("bad duration accepted")
	}
	if _, err := pickLoad("", "5mA", "10ms", "triangle"); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 1, 3) != 3 || clamp(0, 1, 3) != 1 || clamp(2, 1, 3) != 2 {
		t.Error("clamp wrong")
	}
}

// TestRealMainErrors drives the binary's error paths: each bad invocation
// must exit non-zero with a usable message on stderr.
func TestRealMainErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"unknown flag", []string{"-frobnicate"}, 2, "flag provided but not defined"},
		{"bad flag value", []string{"-esr", "five"}, 2, "invalid value"},
		{"negative workers", []string{"-workers", "-1"}, 2, "-workers must be >= 0"},
		{"unknown peripheral", []string{"-peripheral", "warpdrive"}, 1, `unknown peripheral "warpdrive"`},
		{"bad current", []string{"-i", "notanumber"}, 1, "bad -i"},
		{"bad capacitance", []string{"-c", "xyz"}, 1, "bad -c"},
		{"missing trace file", []string{"-trace", "/nonexistent/trace.csv"}, 1, "cannot read -trace"},
		{"inverted voltage window", []string{"-voff", "2.5", "-vhigh", "1.8"}, 1, "invalid voltage window"},
		{"degenerate voltage window", []string{"-voff", "2.0", "-vhigh", "2.0"}, 1, "invalid voltage window"},
		{"bad age", []string{"-age", "1.5"}, 1, "bad -age"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := realMain(context.Background(), tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestRealMainHappyPath runs one full estimation end to end and checks the
// table shape: the ground-truth row plus at least the Culpeo estimators.
func TestRealMainHappyPath(t *testing.T) {
	var stdout, stderr strings.Builder
	code := realMain(context.Background(), []string{"-i", "25mA", "-t", "10ms", "-workers", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"ground truth (brute force)", "Culpeo-PG", "Culpeo-R (ISR)", "Culpeo-R (µArch)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRealMainFast runs the same estimation on the analytic stepper; the
// table must keep its shape (values may differ sub-mV from exact).
func TestRealMainFast(t *testing.T) {
	var stdout, stderr strings.Builder
	code := realMain(context.Background(), []string{"-i", "25mA", "-t", "10ms", "-fast"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if out := stdout.String(); !strings.Contains(out, "ground truth (brute force)") || !strings.Contains(out, "Culpeo-PG") {
		t.Errorf("fast-path output lost the table:\n%s", out)
	}
}

// TestRealMainProfiles exercises -cpuprofile/-memprofile via internal/prof:
// both files must exist and be non-empty after a successful run.
func TestRealMainProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr strings.Builder
	code := realMain(context.Background(),
		[]string{"-i", "25mA", "-t", "10ms", "-fast", "-cpuprofile", cpu, "-memprofile", mem},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile missing: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}

	// An unwritable profile path is a startup error (exit 2), reported
	// before any estimation work happens.
	stderr.Reset()
	if code := realMain(context.Background(),
		[]string{"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "x.pprof")},
		&stdout, &stderr); code != 2 {
		t.Errorf("unwritable -cpuprofile: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
}

// Command vsafe computes the safe starting voltage for a load profile on a
// configurable power system, comparing Culpeo's estimators with the
// energy-only baselines and the brute-force ground truth.
//
//	vsafe -i 50mA -t 10ms -shape pulse
//	vsafe -i 25mA -t 100ms -shape uniform -c 33mF -esr 3 -voff 1.8
//	vsafe -peripheral ble
//
// The output lists, for each estimator: the V_safe estimate, its error
// versus ground truth as a percentage of the operating range, and whether a
// task launched at the estimate survives.
package main

import (
	"flag"
	"fmt"
	"os"

	"culpeo/internal/baseline"
	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/expt"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/units"
)

func main() {
	var (
		iStr       = flag.String("i", "25mA", "load current (e.g. 50mA)")
		tStr       = flag.String("t", "10ms", "pulse duration (e.g. 100ms)")
		shape      = flag.String("shape", "pulse", "load shape: uniform | pulse (pulse adds 100ms of 1.5mA compute)")
		peripheral = flag.String("peripheral", "", "use a peripheral profile instead: gesture | ble | mnist | lora")
		traceFile  = flag.String("trace", "", "use a captured current trace (CSV: current_A rows, or time_s,current_A)")
		traceRate  = flag.Float64("rate", 125e3, "sample rate for one-column -trace files (Hz)")
		cStr       = flag.String("c", "45mF", "buffer capacitance")
		esr        = flag.Float64("esr", 5.0, "buffer ESR in ohms")
		vOff       = flag.Float64("voff", 1.6, "power-off threshold (V)")
		vHigh      = flag.Float64("vhigh", 2.56, "fully-charged voltage (V)")
		life       = flag.Float64("age", 0, "capacitor life fraction consumed [0..1] (C fades, ESR doubles)")
	)
	flag.Parse()

	var task load.Profile
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err := load.TraceFromCSV(f, *traceFile, *traceRate)
		f.Close()
		if err != nil {
			fatal(err)
		}
		task = tr
	} else {
		var err error
		task, err = pickLoad(*peripheral, *iStr, *tStr, *shape)
		if err != nil {
			fatal(err)
		}
	}

	c, err := units.Parse(*cStr)
	if err != nil {
		fatal(fmt.Errorf("bad -c: %w", err))
	}
	aging := capacitor.Aging{LifeFraction: *life}
	aged := aging.Apply(capacitor.Branch{Name: "main", C: c, ESR: *esr})
	aged.Voltage = *vHigh
	net, err := capacitor.NewNetwork(&aged)
	if err != nil {
		fatal(err)
	}
	cfg := powersys.Capybara()
	cfg.Storage = net
	cfg.VOff, cfg.VHigh = *vOff, *vHigh

	h, err := harness.New(cfg)
	if err != nil {
		fatal(err)
	}
	model := core.PowerModel{
		C:     c, // nominal; aging passed to the model separately
		ESR:   capacitor.Flat(*esr),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
		Aging: aging,
	}

	fmt.Printf("load: %s   buffer: %s @ %s (aged ×%.2f ESR)   window: %.2f–%.2f V\n\n",
		task.Name(), units.FormatF(aged.C), units.FormatOhm(aged.ESR),
		aging.ESRFactor(), cfg.VOff, cfg.VHigh)

	gt, err := h.GroundTruth(task)
	if err != nil {
		fatal(fmt.Errorf("this load cannot run on this buffer at any voltage: %w", err))
	}

	tbl := &expt.Table{
		Header: []string{"estimator", "V_safe", "error %", "launch outcome"},
	}
	tbl.Add("ground truth (brute force)", fmt.Sprintf("%.3f", gt), "0.0", "completes")

	addRow := func(name string, v float64) {
		res := h.RunAt(clamp(v, cfg.VOff, cfg.VHigh), task, powersys.RunOptions{SkipRebound: true})
		outcome := "POWER FAILURE"
		if res.Completed && res.VMin >= cfg.VOff {
			outcome = fmt.Sprintf("completes (V_min %.3f)", res.VMin)
		}
		tbl.Add(name, fmt.Sprintf("%.3f", v), fmt.Sprintf("%+.1f", h.ErrorPercent(v, gt)), outcome)
	}

	pg := profiler.PG{Model: model}
	if est, err := pg.Estimate(task); err == nil {
		addRow("Culpeo-PG", est.VSafe)
	}
	sys := h.NewSystem()
	sys.Monitor().Force(true)
	if est, err := profiler.REstimate(model, sys, profiler.NewISRProbe(sys.VTerm), task, 0); err == nil {
		addRow("Culpeo-R (ISR)", est.VSafe)
	}
	sys = h.NewSystem()
	sys.Monitor().Force(true)
	if est, err := profiler.REstimate(model, sys, profiler.NewUArchProbe(sys.VTerm), task, 0); err == nil {
		addRow("Culpeo-R (µArch)", est.VSafe)
	}
	for _, k := range baseline.Kinds() {
		addRow(k.String(), baseline.Estimate(k, h, task))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func pickLoad(peripheral, iStr, tStr, shape string) (load.Profile, error) {
	switch peripheral {
	case "gesture":
		return load.Gesture(), nil
	case "ble":
		return load.BLERadio(), nil
	case "mnist":
		return load.ComputeAccel(), nil
	case "lora":
		return load.LoRa(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown peripheral %q", peripheral)
	}
	i, err := units.Parse(iStr)
	if err != nil {
		return nil, fmt.Errorf("bad -i: %w", err)
	}
	t, err := units.Parse(tStr)
	if err != nil {
		return nil, fmt.Errorf("bad -t: %w", err)
	}
	switch shape {
	case "uniform":
		return load.NewUniform(i, t), nil
	case "pulse":
		return load.NewPulse(i, t), nil
	}
	return nil, fmt.Errorf("unknown shape %q", shape)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsafe:", err)
	os.Exit(1)
}

// Command vsafe computes the safe starting voltage for a load profile on a
// configurable power system, comparing Culpeo's estimators with the
// energy-only baselines and the brute-force ground truth.
//
//	vsafe -i 50mA -t 10ms -shape pulse
//	vsafe -i 25mA -t 100ms -shape uniform -c 33mF -esr 3 -voff 1.8
//	vsafe -peripheral ble
//
// The output lists, for each estimator: the V_safe estimate, its error
// versus ground truth as a percentage of the operating range, and whether a
// task launched at the estimate survives. The estimators run concurrently
// on the sweep pool (-workers bounds it); rows print in a fixed order
// regardless of worker count. -fast switches the simulations onto the
// analytic segment-advance stepper (within a millivolt of exact, not
// bit-identical); -cpuprofile/-memprofile write runtime/pprof profiles —
// the same knobs the culpeo driver exposes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"culpeo/internal/baseline"
	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/expt"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/prof"
	"culpeo/internal/profiler"
	"culpeo/internal/sweep"
	"culpeo/internal/units"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vsafe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		iStr       = fs.String("i", "25mA", "load current (e.g. 50mA)")
		tStr       = fs.String("t", "10ms", "pulse duration (e.g. 100ms)")
		shape      = fs.String("shape", "pulse", "load shape: uniform | pulse (pulse adds 100ms of 1.5mA compute)")
		peripheral = fs.String("peripheral", "", "use a peripheral profile instead: gesture | ble | mnist | lora")
		traceFile  = fs.String("trace", "", "use a captured current trace (CSV: current_A rows, or time_s,current_A)")
		traceRate  = fs.Float64("rate", 125e3, "sample rate for one-column -trace files (Hz)")
		cStr       = fs.String("c", "45mF", "buffer capacitance")
		esr        = fs.Float64("esr", 5.0, "buffer ESR in ohms")
		vOff       = fs.Float64("voff", 1.6, "power-off threshold (V)")
		vHigh      = fs.Float64("vhigh", 2.56, "fully-charged voltage (V)")
		life       = fs.Float64("age", 0, "capacitor life fraction consumed [0..1] (C fades, ESR doubles)")
		workers    = fs.Int("workers", 0, "parallel estimator workers (0 = GOMAXPROCS)")
		fast       = fs.Bool("fast", false, "use the analytic fast-path stepper (sub-mV of exact, not bit-identical)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "vsafe: -workers must be >= 0, got %d\n", *workers)
		return 2
	}
	if *workers > 0 {
		ctx = sweep.WithWorkers(ctx, *workers)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(stderr, "vsafe:", err)
		return 2
	}
	code := 0
	if err := vsafe(ctx, stdout, params{
		iStr: *iStr, tStr: *tStr, shape: *shape, peripheral: *peripheral,
		traceFile: *traceFile, traceRate: *traceRate,
		cStr: *cStr, esr: *esr, vOff: *vOff, vHigh: *vHigh, life: *life,
		fast: *fast,
	}); err != nil {
		fmt.Fprintln(stderr, "vsafe:", err)
		code = 1
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(stderr, "vsafe: profile:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

type params struct {
	iStr, tStr, shape, peripheral string
	traceFile                     string
	traceRate                     float64
	cStr                          string
	esr, vOff, vHigh, life        float64
	fast                          bool
}

func vsafe(ctx context.Context, stdout io.Writer, p params) error {
	if p.vOff >= p.vHigh {
		return fmt.Errorf("invalid voltage window: -voff (%.3g) must be below -vhigh (%.3g)", p.vOff, p.vHigh)
	}
	if p.life < 0 || p.life > 1 {
		return fmt.Errorf("bad -age: life fraction %g outside [0..1]", p.life)
	}

	var task load.Profile
	if p.traceFile != "" {
		f, err := os.Open(p.traceFile)
		if err != nil {
			return fmt.Errorf("cannot read -trace: %w", err)
		}
		tr, err := load.TraceFromCSV(f, p.traceFile, p.traceRate)
		f.Close()
		if err != nil {
			return err
		}
		task = tr
	} else {
		var err error
		task, err = pickLoad(p.peripheral, p.iStr, p.tStr, p.shape)
		if err != nil {
			return err
		}
	}

	c, err := units.Parse(p.cStr)
	if err != nil {
		return fmt.Errorf("bad -c: %w", err)
	}
	aging := capacitor.Aging{LifeFraction: p.life}
	aged := aging.Apply(capacitor.Branch{Name: "main", C: c, ESR: p.esr})
	aged.Voltage = p.vHigh
	net, err := capacitor.NewNetwork(&aged)
	if err != nil {
		return err
	}
	cfg := powersys.Capybara()
	cfg.Storage = net
	cfg.VOff, cfg.VHigh = p.vOff, p.vHigh

	h, err := harness.New(cfg)
	if err != nil {
		return err
	}
	h.Fast = p.fast
	model := core.PowerModel{
		C:     c, // nominal; aging passed to the model separately
		ESR:   capacitor.Flat(p.esr),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
		Aging: aging,
	}

	fmt.Fprintf(stdout, "load: %s   buffer: %s @ %s (aged ×%.2f ESR)   window: %.2f–%.2f V\n\n",
		task.Name(), units.FormatF(aged.C), units.FormatOhm(aged.ESR),
		aging.ESRFactor(), cfg.VOff, cfg.VHigh)

	gt, err := h.GroundTruthCtx(ctx, task, 0)
	if err != nil {
		return fmt.Errorf("this load cannot run on this buffer at any voltage: %w", err)
	}

	// Each estimator is one sweep cell: it owns its probe system, produces
	// an estimate, and validates the launch with an independent run. Cells
	// that cannot produce an estimate are skipped, matching the serial
	// behaviour.
	type est struct {
		name string
		fn   func() (float64, error)
	}
	ests := []est{
		{"Culpeo-PG", func() (float64, error) {
			e, err := profiler.PG{Model: model}.Estimate(task)
			return e.VSafe, err
		}},
		{"Culpeo-R (ISR)", func() (float64, error) {
			sys := h.NewSystem()
			sys.Monitor().Force(true)
			e, err := profiler.REstimate(model, sys, profiler.NewISRProbe(sys.VTerm), task, 0)
			return e.VSafe, err
		}},
		{"Culpeo-R (µArch)", func() (float64, error) {
			sys := h.NewSystem()
			sys.Monitor().Force(true)
			e, err := profiler.REstimate(model, sys, profiler.NewUArchProbe(sys.VTerm), task, 0)
			return e.VSafe, err
		}},
	}
	for _, k := range baseline.Kinds() {
		k := k
		ests = append(ests, est{k.String(), func() (float64, error) {
			return baseline.Estimate(k, h, task), nil
		}})
	}

	type row struct {
		name, vsafe, errPct, outcome string
		skip                         bool
	}
	rows, err := sweep.Map(ctx, ests, func(_ context.Context, _ int, e est) (row, error) {
		v, err := e.fn()
		if err != nil {
			return row{skip: true}, nil
		}
		res := h.RunAt(clamp(v, cfg.VOff, cfg.VHigh), task, powersys.RunOptions{SkipRebound: true})
		outcome := "POWER FAILURE"
		if res.Completed && res.VMin >= cfg.VOff {
			outcome = fmt.Sprintf("completes (V_min %.3f)", res.VMin)
		}
		return row{
			name:    e.name,
			vsafe:   fmt.Sprintf("%.3f", v),
			errPct:  fmt.Sprintf("%+.1f", h.ErrorPercent(v, gt)),
			outcome: outcome,
		}, nil
	})
	if err != nil {
		return err
	}

	tbl := &expt.Table{
		Header: []string{"estimator", "V_safe", "error %", "launch outcome"},
	}
	tbl.Add("ground truth (brute force)", fmt.Sprintf("%.3f", gt), "0.0", "completes")
	for _, r := range rows {
		if !r.skip {
			tbl.Add(r.name, r.vsafe, r.errPct, r.outcome)
		}
	}
	return tbl.Render(stdout)
}

func pickLoad(peripheral, iStr, tStr, shape string) (load.Profile, error) {
	switch peripheral {
	case "gesture":
		return load.Gesture(), nil
	case "ble":
		return load.BLERadio(), nil
	case "mnist":
		return load.ComputeAccel(), nil
	case "lora":
		return load.LoRa(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown peripheral %q", peripheral)
	}
	i, err := units.Parse(iStr)
	if err != nil {
		return nil, fmt.Errorf("bad -i: %w", err)
	}
	t, err := units.Parse(tStr)
	if err != nil {
		return nil, fmt.Errorf("bad -t: %w", err)
	}
	switch shape {
	case "uniform":
		return load.NewUniform(i, t), nil
	case "pulse":
		return load.NewPulse(i, t), nil
	}
	return nil, fmt.Errorf("unknown shape %q", shape)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

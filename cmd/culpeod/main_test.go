package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/client"
)

// syncBuffer lets the test read daemon output while realMain writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs realMain on an ephemeral port and returns the base URL,
// a cancel that triggers the drain, and the exit-code channel.
func startDaemon(t *testing.T, args ...string) (string, context.CancelFunc, <-chan int, *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	code := make(chan int, 1)
	go func() {
		code <- realMain(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, io.Discard)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "listening on http://") {
			line := s[strings.Index(s, "http://"):]
			url := strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			return url, cancel, code, out
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeAndDrain boots the daemon, exercises the endpoints, then cancels
// (the in-process stand-in for SIGTERM) and requires a clean exit 0.
func TestServeAndDrain(t *testing.T) {
	url, cancel, code, out := startDaemon(t)
	defer cancel()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Post(url+"/v1/vsafe", "application/json",
		strings.NewReader(`{"load":{"shape":"uniform","i":0.025,"t":0.01}}`))
	if err != nil {
		t.Fatalf("vsafe: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vsafe status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"v_safe"`) {
		t.Fatalf("vsafe body missing estimate: %s", body)
	}

	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d, want 0; output: %q", c, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s")
	}
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "drained, exiting") {
		t.Errorf("drain log lines missing from output: %q", s)
	}
}

// waitForOutput polls the daemon's stdout until want appears.
func waitForOutput(t *testing.T, out *syncBuffer, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed %q; output: %q", want, out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainFailover is the contract between culpeod's graceful drain and the
// client pool: while one of two daemons drains with a request still in
// flight, a client.Pool spanning both must keep every call succeeding by
// failing over to the healthy instance — during the drain window, well
// before the draining daemon's hard deadline.
func TestDrainFailover(t *testing.T) {
	// A generous -drain-timeout so a slow CI box cannot hit the hard
	// deadline; the test releases the drain itself long before. -max-inflight
	// keeps slots free next to the deliberately stalled request below.
	urlA, cancelA, codeA, outA := startDaemon(t, "-drain-timeout", "30s", "-max-inflight", "4")
	defer cancelA()
	urlB, cancelB, codeB, _ := startDaemon(t)
	defer cancelB()

	pool, err := client.New(client.Config{
		Backends:          []string{urlA, urlB},
		DisableKeepAlives: true,
		Budget:            10 * time.Second,
		AttemptTimeout:    2 * time.Second,
		MaxAttempts:       8,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        10 * time.Millisecond,
		Breaker:           client.BreakerConfig{FailureThreshold: 2, CooldownCalls: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	req := api.VSafeRequest{Load: api.LoadSpec{Shape: "uniform", I: 0.02, T: 0.01}}
	if _, err := pool.VSafe(context.Background(), req); err != nil {
		t.Fatalf("baseline call with both daemons up: %v", err)
	}

	// Hold A's drain open: a request whose body never finishes arriving
	// keeps one connection active, so http.Server.Shutdown must wait for it.
	stall, err := net.Dial("tcp", strings.TrimPrefix(urlA, "http://"))
	if err != nil {
		t.Fatalf("dial A: %v", err)
	}
	defer stall.Close()
	if _, err := io.WriteString(stall, "POST /v1/vsafe HTTP/1.1\r\n"+
		"Host: culpeod\r\nContent-Type: application/json\r\n"+
		"Content-Length: 512\r\n\r\n{"); err != nil {
		t.Fatalf("write stalled request: %v", err)
	}
	// Wait until A has admitted it (the handler is now blocked reading the
	// body) so the drain below is guaranteed to have in-flight work.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(urlA + "/metrics")
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `"in_flight":1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled request never admitted; metrics: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancelA() // the in-process stand-in for SIGTERM
	waitForOutput(t, outA, "draining")

	// Mid-drain, A's listener is closed and the stalled request pins the
	// shutdown. Every pool call must still succeed, riding over to B.
	for i := 0; i < 12; i++ {
		r := req
		r.Load.I = 0.02 + float64(i)*1e-3
		if _, err := pool.VSafe(context.Background(), r); err != nil {
			t.Fatalf("call %d during drain: %v", i, err)
		}
	}
	m := pool.Metrics()
	if m.Successes != m.Calls {
		t.Errorf("successes=%d calls=%d: calls were lost during drain", m.Successes, m.Calls)
	}
	if m.Failovers == 0 {
		t.Error("pool never failed over away from the draining daemon")
	}

	// The drain must still be in progress — that proves the failover above
	// happened during the drain window, not after A exited.
	select {
	case c := <-codeA:
		t.Fatalf("daemon A exited (code %d) while its stalled request was still held", c)
	default:
	}

	// Release the held request: A finishes its graceful drain well inside
	// the 30s hard deadline and exits 0.
	stall.Close()
	select {
	case c := <-codeA:
		if c != 0 {
			t.Fatalf("A exit code %d, want 0; output: %q", c, outA.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("A did not finish draining after the stalled request was released")
	}
	if s := outA.String(); !strings.Contains(s, "drained, exiting") {
		t.Errorf("A's drain log incomplete: %q", s)
	}

	cancelB()
	select {
	case c := <-codeB:
		if c != 0 {
			t.Fatalf("B exit code %d, want 0", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("B did not drain")
	}
}

func TestFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nonsense"},
		{"stray-positional"},
		{"-timeout", "-5s"},
		{"-queue-depth", "-1"},
		{"-drain-timeout", "0s"},
	}
	for _, args := range cases {
		if got := realMain(context.Background(), args, io.Discard, io.Discard); got != 2 {
			t.Errorf("realMain(%v) = %d, want 2", args, got)
		}
	}
}

func TestBadListenAddr(t *testing.T) {
	if got := realMain(context.Background(), []string{"-addr", "256.256.256.256:1"}, io.Discard, io.Discard); got != 1 {
		t.Errorf("unlistenable address: exit %d, want 1", got)
	}
}

// TestJournalRecoveryFailureExits: a journal that cannot be opened (the
// path is a regular file, so no directory can exist there) must abort the
// boot with exit 1 and the parseable "journal recovery failed" reason —
// never serve with silent data loss.
func TestJournalRecoveryFailureExits(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var errOut syncBuffer
	got := realMain(context.Background(), []string{"-addr", "127.0.0.1:0", "-journal-dir", file}, io.Discard, &errOut)
	if got != 1 {
		t.Fatalf("exit code %d, want 1; stderr: %q", got, errOut.String())
	}
	if !strings.Contains(errOut.String(), "culpeod: journal recovery failed:") {
		t.Fatalf("stderr missing parseable reason: %q", errOut.String())
	}
}

// TestJournalFlagErrors: -snapshot-every must be non-negative.
func TestJournalFlagErrors(t *testing.T) {
	if got := realMain(context.Background(), []string{"-snapshot-every", "-1"}, io.Discard, io.Discard); got != 2 {
		t.Fatalf("realMain(-snapshot-every -1) = %d, want 2", got)
	}
}

// TestJournaledDrainAndRecover: a journaled daemon reports recovery before
// listening, snapshots on graceful drain, and a second incarnation rebuilds
// the streamed session from the directory the first one left behind.
func TestJournaledDrainAndRecover(t *testing.T) {
	dir := t.TempDir()
	url, cancel, code, out := startDaemon(t, "-journal-dir", dir, "-session-sweep", "0")
	defer cancel()
	waitForOutput(t, out, "journal recovered: 0 sessions")

	// Open a stream and fold one acknowledged observation.
	openBody := `{"device":"dev-boot","ring":4}`
	resp, err := http.Post(url+api.PathStream, "application/json", strings.NewReader(openBody))
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open stream status %d", resp.StatusCode)
	}
	obs := `{"device":"dev-boot","observations":[{"seq":1,"v_start":2.3,"v_min":2.05,"v_final":2.1}]}`
	oresp, err := http.Post(url+api.PathStreamObs, "application/json", strings.NewReader(obs))
	if err != nil {
		t.Fatalf("obs: %v", err)
	}
	body, _ := io.ReadAll(oresp.Body)
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusOK {
		t.Fatalf("obs status %d: %s", oresp.StatusCode, body)
	}

	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d; output %q", c, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	// The graceful drain left a compacted snapshot behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			snap = true
		}
	}
	if !snap {
		t.Fatalf("no snapshot after graceful drain; dir: %v", entries)
	}

	// Boot a second incarnation on the same directory: the session is back.
	url2, cancel2, _, out2 := startDaemon(t, "-journal-dir", dir, "-session-sweep", "0")
	defer cancel2()
	waitForOutput(t, out2, "journal recovered: 1 sessions")
	retry, err := http.Post(url2+api.PathStreamObs, "application/json", strings.NewReader(obs))
	if err != nil {
		t.Fatalf("retry obs: %v", err)
	}
	rbody, _ := io.ReadAll(retry.Body)
	retry.Body.Close()
	if retry.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d: %s", retry.StatusCode, rbody)
	}
	if !strings.Contains(string(rbody), `"duplicates":1`) {
		t.Fatalf("recovered session did not dedup the retried observation: %s", rbody)
	}
}

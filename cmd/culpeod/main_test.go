package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read daemon output while realMain writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs realMain on an ephemeral port and returns the base URL,
// a cancel that triggers the drain, and the exit-code channel.
func startDaemon(t *testing.T, args ...string) (string, context.CancelFunc, <-chan int, *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	code := make(chan int, 1)
	go func() {
		code <- realMain(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, io.Discard)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "listening on http://") {
			line := s[strings.Index(s, "http://"):]
			url := strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			return url, cancel, code, out
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeAndDrain boots the daemon, exercises the endpoints, then cancels
// (the in-process stand-in for SIGTERM) and requires a clean exit 0.
func TestServeAndDrain(t *testing.T) {
	url, cancel, code, out := startDaemon(t)
	defer cancel()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Post(url+"/v1/vsafe", "application/json",
		strings.NewReader(`{"load":{"shape":"uniform","i":0.025,"t":0.01}}`))
	if err != nil {
		t.Fatalf("vsafe: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vsafe status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"v_safe"`) {
		t.Fatalf("vsafe body missing estimate: %s", body)
	}

	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d, want 0; output: %q", c, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s")
	}
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "drained, exiting") {
		t.Errorf("drain log lines missing from output: %q", s)
	}
}

func TestFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-nonsense"},
		{"stray-positional"},
		{"-timeout", "-5s"},
		{"-queue-depth", "-1"},
		{"-drain-timeout", "0s"},
	}
	for _, args := range cases {
		if got := realMain(context.Background(), args, io.Discard, io.Discard); got != 2 {
			t.Errorf("realMain(%v) = %d, want 2", args, got)
		}
	}
}

func TestBadListenAddr(t *testing.T) {
	if got := realMain(context.Background(), []string{"-addr", "256.256.256.256:1"}, io.Discard, io.Discard); got != 1 {
		t.Errorf("unlistenable address: exit %d, want 1", got)
	}
}

// Command culpeod serves the Culpeo estimators over HTTP/JSON: V_safe
// estimation (profile-guided and runtime), launch simulation and batched
// estimation, all coalesced through one shared V_safe cache.
//
//	culpeod                      # listen on 127.0.0.1:8080
//	culpeod -addr :9000          # all interfaces, port 9000
//	culpeod -addr 127.0.0.1:0    # ephemeral port (printed on startup)
//
// Endpoints: POST /v1/vsafe, /v1/vsafe-r, /v1/simulate, /v1/batch,
// /v1/stream (sessionized SSE downlink), /v1/stream/obs (uplink);
// GET /healthz, /metrics. See internal/serve for the wire contract.
//
// The daemon drains gracefully: on SIGTERM or SIGINT it stops accepting,
// flips /healthz to 503 so load balancers stop routing, lets in-flight
// requests finish, and exits 0 — or forces the remainder closed and exits 1
// if the -drain-timeout hard deadline expires first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"culpeo/internal/journal"
	"culpeo/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("culpeod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
		maxInFlight  = fs.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queueDepth   = fs.Int("queue-depth", serve.DefaultQueueDepth, "admission queue depth before 503s")
		timeout      = fs.Duration("timeout", serve.DefaultTimeout, "per-request deadline")
		cacheSize    = fs.Int("cache-size", 0, "V_safe cache entries (0 = default)")
		workers      = fs.Int("workers", 0, "batch sweep workers (0 = GOMAXPROCS)")
		scalarBatch  = fs.Bool("scalar-batch", false, "run /v1/batch simulations one-by-one instead of on the SoA lockstep stepper")
		shardID      = fs.String("shard-id", "", "shard identity advertised on /healthz and /metrics (empty = standalone)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "hard deadline for graceful drain")

		maxSessions  = fs.Int("max-sessions", 0, "max live streaming sessions before /v1/stream opens 503 (0 = default)")
		sessionRing  = fs.Int("session-ring", 0, "default per-session observation window (0 = default)")
		sessionQueue = fs.Int("session-queue", 0, "per-connection event queue before a slow-consumer kick (0 = default)")
		sessionIdle  = fs.Int("session-idle-epochs", 0, "sweep epochs a detached session survives before eviction (0 = default)")
		sessionSweep = fs.Duration("session-sweep", 30*time.Second, "session epoch sweeper interval (0 disables idle eviction)")

		journalDir   = fs.String("journal-dir", "", "write-ahead session journal directory (empty disables journaling)")
		journalFsync = fs.Bool("journal-fsync", true, "fsync journal batches before acknowledging observations")
		snapEvery    = fs.Int("snapshot-every", 4096, "journal appends between compacted snapshots (0 = snapshot only on drain)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "culpeod: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *queueDepth < 0 || *timeout <= 0 || *drainTimeout <= 0 {
		fmt.Fprintln(stderr, "culpeod: -queue-depth must be >= 0; -timeout and -drain-timeout must be positive")
		return 2
	}
	if *maxSessions < 0 || *sessionRing < 0 || *sessionQueue < 0 || *sessionIdle < 0 || *sessionSweep < 0 {
		fmt.Fprintln(stderr, "culpeod: session flags must be >= 0")
		return 2
	}
	if *snapEvery < 0 {
		fmt.Fprintln(stderr, "culpeod: -snapshot-every must be >= 0")
		return 2
	}

	// Open the journal (and read back whatever a previous incarnation left)
	// before the server exists: a journal that cannot be opened — or a
	// recovery that cannot be replayed — must fail the boot loudly rather
	// than serve with silent data loss. The "journal recovery failed" prefix
	// is the parseable contract for supervisors.
	var (
		jrnl *journal.Journal
		rec  journal.Recovery
	)
	if *journalDir != "" {
		var err error
		jrnl, rec, err = journal.Open(journal.Options{
			Dir:   *journalDir,
			Fsync: *journalFsync,
		})
		if err != nil {
			fmt.Fprintln(stderr, "culpeod: journal recovery failed:", err)
			return 1
		}
		defer jrnl.Close()
	}

	s := serve.New(serve.Config{
		MaxInFlight: *maxInFlight,
		QueueDepth:  *queueDepth,
		Timeout:     *timeout,
		CacheSize:   *cacheSize,
		Workers:     *workers,
		ScalarBatch: *scalarBatch,
		ShardID:     *shardID,

		MaxSessions:       *maxSessions,
		SessionRing:       *sessionRing,
		SessionQueue:      *sessionQueue,
		SessionIdleEpochs: *sessionIdle,
		SessionSweep:      *sessionSweep,

		Journal:       jrnl,
		SnapshotEvery: *snapEvery,
	})
	defer s.Close()

	// Replay the previous incarnation's journal into the fresh session table
	// before the listener exists. /healthz would answer "recovering" during
	// this window; since we replay before binding the port, external callers
	// only ever see "ready".
	if jrnl != nil {
		st, err := s.Recover(rec)
		if err != nil {
			fmt.Fprintln(stderr, "culpeod: journal recovery failed:", err)
			return 1
		}
		fmt.Fprintf(stdout, "culpeod: journal recovered: %d sessions (%d tombstones, %d from snapshot, %d records, %d skipped), %d segments, %d bytes truncated\n",
			st.Sessions, st.Tombstones, st.FromSnapshot, st.Records, st.Skipped, rec.Segments, rec.Truncated)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "culpeod:", err)
		return 1
	}
	// The resolved address line is the startup contract: scripts (and the
	// serve-smoke harness) parse it to find an ephemeral port.
	fmt.Fprintf(stdout, "culpeod: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "culpeod:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop routing (healthz 503), stop accepting, finish in-flight
	// work, give up at the hard deadline.
	fmt.Fprintln(stdout, "culpeod: draining")
	s.SetDraining(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		_ = httpSrv.Close()
		fmt.Fprintln(stderr, "culpeod: drain deadline expired:", err)
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "culpeod:", err)
		return 1
	}
	// A graceful drain leaves a compacted snapshot behind: the next boot
	// replays one image instead of the whole segment run.
	if jrnl != nil {
		if err := s.JournalSnapshot(); err != nil {
			fmt.Fprintln(stderr, "culpeod: drain snapshot:", err)
			return 1
		}
	}
	fmt.Fprintln(stdout, "culpeod: drained, exiting")
	return 0
}

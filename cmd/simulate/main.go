// Command simulate runs the power-system simulator on a load profile and
// streams the voltage/current trace as CSV — the in-silico equivalent of
// hooking a logic analyzer to the capacitor rail.
//
//	simulate -i 50mA -t 100ms -vstart 2.3 > trace.csv
//	simulate -peripheral ble -vstart 2.0 -esr 5 -dec 400uF
//
// Columns: t_s, v_term_V, v_oc_V, i_load_A, i_in_A.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"culpeo/internal/capacitor"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/trace"
	"culpeo/internal/units"
)

func main() {
	var (
		iStr       = flag.String("i", "50mA", "load current")
		tStr       = flag.String("t", "100ms", "pulse duration")
		shape      = flag.String("shape", "uniform", "load shape: uniform | pulse")
		peripheral = flag.String("peripheral", "", "peripheral profile: gesture | ble | mnist | lora")
		vStart     = flag.Float64("vstart", 2.4, "starting voltage (V)")
		cStr       = flag.String("c", "45mF", "buffer capacitance")
		esr        = flag.Float64("esr", 5.0, "buffer ESR (Ω)")
		decStr     = flag.String("dec", "0", "decoupling capacitance (e.g. 400uF; 0 = none)")
		harvest    = flag.Float64("harvest", 0, "harvested power (W)")
		every      = flag.Int("every", 4, "keep one sample per N steps")
		rebound    = flag.Bool("rebound", true, "record the post-load rebound")
		plot       = flag.Bool("plot", false, "render an ASCII voltage chart to stderr instead of CSV to stdout")
	)
	flag.Parse()

	task, err := pickLoad(*peripheral, *iStr, *tStr, *shape)
	if err != nil {
		fatal(err)
	}
	c, err := units.Parse(*cStr)
	if err != nil {
		fatal(fmt.Errorf("bad -c: %w", err))
	}
	dec, err := units.Parse(*decStr)
	if err != nil {
		fatal(fmt.Errorf("bad -dec: %w", err))
	}

	branches := []*capacitor.Branch{{Name: "main", C: c, ESR: *esr, Voltage: *vStart}}
	if dec > 0 {
		branches = append(branches, &capacitor.Branch{Name: "decoupling", C: dec, ESR: 0.05, Voltage: *vStart})
	}
	net, err := capacitor.NewNetwork(branches...)
	if err != nil {
		fatal(err)
	}
	cfg := powersys.Capybara()
	cfg.Storage = net
	sys, err := powersys.New(cfg)
	if err != nil {
		fatal(err)
	}
	sys.Monitor().Force(true)

	rec := trace.NewRecorder(*every)
	res := sys.Run(task, powersys.RunOptions{
		HarvestPower: *harvest,
		Recorder:     rec,
		SkipRebound:  !*rebound,
	})

	if *plot {
		if err := rec.Plot(os.Stderr, trace.PlotOptions{
			Marker: cfg.VOff, MarkerLabel: "V_off",
		}); err != nil {
			fatal(err)
		}
	} else {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		if err := rec.WriteCSV(w); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr,
		"simulate: %s from %.3f V: completed=%v v_min=%.3f v_final=%.3f energy_used=%s samples=%d\n",
		task.Name(), res.VStart, res.Completed, res.VMin, res.VFinal,
		units.Format(res.EnergyUsed, "J"), rec.Len())
}

func pickLoad(peripheral, iStr, tStr, shape string) (load.Profile, error) {
	switch peripheral {
	case "gesture":
		return load.Gesture(), nil
	case "ble":
		return load.BLERadio(), nil
	case "mnist":
		return load.ComputeAccel(), nil
	case "lora":
		return load.LoRa(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown peripheral %q", peripheral)
	}
	i, err := units.Parse(iStr)
	if err != nil {
		return nil, fmt.Errorf("bad -i: %w", err)
	}
	t, err := units.Parse(tStr)
	if err != nil {
		return nil, fmt.Errorf("bad -t: %w", err)
	}
	if shape == "pulse" {
		return load.NewPulse(i, t), nil
	}
	return load.NewUniform(i, t), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}

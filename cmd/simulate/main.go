// Command simulate runs the power-system simulator on a load profile and
// streams the voltage/current trace as CSV — the in-silico equivalent of
// hooking a logic analyzer to the capacitor rail.
//
//	simulate -i 50mA -t 100ms -vstart 2.3 > trace.csv
//	simulate -peripheral ble -vstart 2.0 -esr 5 -dec 400uF
//	simulate -i 50mA -t 10ms -shape pulse -vsweep 1.8,2.0,2.2,2.4
//	simulate -i 50mA -t 100ms -harvest 5mW -faults "dropout:at=20ms,dur=30ms;age:life=0.5"
//
// Columns: t_s, v_term_V, v_oc_V, i_load_A, i_in_A. With -vsweep, the
// starting voltages run concurrently on the sweep pool (-workers bounds it)
// and a per-voltage summary table replaces the trace. -faults injects
// hardware faults from a fault-spec string (see internal/faults): supply
// dropout/sag, capacitor aging/ESR drift, leakage, and measurement-chain
// errors, applied to the simulated physics.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"culpeo/internal/capacitor"
	"culpeo/internal/expt"
	"culpeo/internal/faults"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/prof"
	"culpeo/internal/sweep"
	"culpeo/internal/trace"
	"culpeo/internal/units"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

type params struct {
	iStr, tStr, shape, peripheral string
	vStart                        float64
	vSweep                        string
	cStr, decStr                  string
	esr, harvest                  float64
	every                         int
	rebound, plot, fast           bool
	faultsStr                     string
}

func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var p params
	fs.StringVar(&p.iStr, "i", "50mA", "load current")
	fs.StringVar(&p.tStr, "t", "100ms", "pulse duration")
	fs.StringVar(&p.shape, "shape", "uniform", "load shape: uniform | pulse")
	fs.StringVar(&p.peripheral, "peripheral", "", "peripheral profile: gesture | ble | mnist | lora")
	fs.Float64Var(&p.vStart, "vstart", 2.4, "starting voltage (V)")
	fs.StringVar(&p.vSweep, "vsweep", "", "comma-separated starting voltages; emits a summary table instead of a trace")
	fs.StringVar(&p.cStr, "c", "45mF", "buffer capacitance")
	fs.Float64Var(&p.esr, "esr", 5.0, "buffer ESR (Ω)")
	fs.StringVar(&p.decStr, "dec", "0", "decoupling capacitance (e.g. 400uF; 0 = none)")
	fs.Float64Var(&p.harvest, "harvest", 0, "harvested power (W)")
	fs.IntVar(&p.every, "every", 4, "keep one sample per N steps")
	fs.BoolVar(&p.rebound, "rebound", true, "record the post-load rebound")
	fs.BoolVar(&p.plot, "plot", false, "render an ASCII voltage chart to stderr instead of CSV to stdout")
	fs.StringVar(&p.faultsStr, "faults", "", `inject faults, e.g. "dropout:at=20ms,dur=30ms;age:life=0.5" (see internal/faults)`)
	fs.BoolVar(&p.fast, "fast", false, "use the analytic fast-path stepper (trace recording and faults fall back to exact)")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "simulate: -workers must be >= 0, got %d\n", *workers)
		return 2
	}
	if *workers > 0 {
		ctx = sweep.WithWorkers(ctx, *workers)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(stderr, "simulate:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "simulate: profile:", err)
		}
	}()
	if err := simulate(ctx, stdout, stderr, p); err != nil {
		fmt.Fprintln(stderr, "simulate:", err)
		return 1
	}
	return 0
}

func simulate(ctx context.Context, stdout, stderr io.Writer, p params) error {
	task, err := pickLoad(p.peripheral, p.iStr, p.tStr, p.shape)
	if err != nil {
		return err
	}
	c, err := units.Parse(p.cStr)
	if err != nil {
		return fmt.Errorf("bad -c: %w", err)
	}
	dec, err := units.Parse(p.decStr)
	if err != nil {
		return fmt.Errorf("bad -dec: %w", err)
	}
	spec, err := faults.Parse(p.faultsStr)
	if err != nil {
		return fmt.Errorf("bad -faults: %w", err)
	}

	// Each system gets a private injector so concurrent -vsweep cells never
	// share the fault RNG streams; identical seeds keep the cells comparable.
	newSystem := func(vStart float64) (*powersys.System, error) {
		branches := []*capacitor.Branch{{Name: "main", C: c, ESR: p.esr, Voltage: vStart}}
		if dec > 0 {
			branches = append(branches, &capacitor.Branch{Name: "decoupling", C: dec, ESR: 0.05, Voltage: vStart})
		}
		net, err := capacitor.NewNetwork(branches...)
		if err != nil {
			return nil, err
		}
		in := faults.New(spec)
		in.ApplyStorage(net)
		cfg := powersys.Capybara()
		cfg.Storage = net
		sys, err := powersys.New(cfg)
		if err != nil {
			return nil, err
		}
		if in != nil {
			sys.Inject(in)
		}
		sys.Monitor().Force(true)
		return sys, nil
	}

	if p.vSweep != "" {
		voltages, err := parseVSweep(p.vSweep)
		if err != nil {
			return err
		}
		return vSweep(ctx, stdout, task, voltages, p.harvest, !p.rebound, p.fast, newSystem)
	}

	sys, err := newSystem(p.vStart)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(p.every)
	res := sys.Run(task, powersys.RunOptions{
		HarvestPower: p.harvest,
		Recorder:     rec,
		SkipRebound:  !p.rebound,
		Fast:         p.fast, // best-effort: the recorder forces exact stepping
	})

	if p.plot {
		if err := rec.Plot(stderr, trace.PlotOptions{
			Marker: powersys.Capybara().VOff, MarkerLabel: "V_off",
		}); err != nil {
			return err
		}
	} else {
		w := bufio.NewWriter(stdout)
		defer w.Flush()
		if err := rec.WriteCSV(w); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr,
		"simulate: %s from %.3f V: completed=%v v_min=%.3f v_final=%.3f energy_used=%s samples=%d\n",
		task.Name(), res.VStart, res.Completed, res.VMin, res.VFinal,
		units.Format(res.EnergyUsed, "J"), rec.Len())
	return nil
}

// parseVSweep parses "1.8,2.0,2.4" into voltages, rejecting junk early so
// the sweep never launches half-configured.
func parseVSweep(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	voltages := make([]float64, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -vsweep entry %q: %w", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("bad -vsweep entry %q: voltage must be positive", part)
		}
		voltages = append(voltages, v)
	}
	if len(voltages) == 0 {
		return nil, fmt.Errorf("-vsweep lists no voltages")
	}
	return voltages, nil
}

// vSweep runs the load from each starting voltage, one independent system
// per sweep cell, and renders a summary table in input order.
func vSweep(ctx context.Context, stdout io.Writer, task load.Profile, voltages []float64,
	harvest float64, skipRebound, fast bool, newSystem func(float64) (*powersys.System, error)) error {
	type row struct {
		res powersys.RunResult
	}
	rows, err := sweep.Map(ctx, voltages, func(_ context.Context, _ int, v float64) (row, error) {
		sys, err := newSystem(v)
		if err != nil {
			return row{}, err
		}
		return row{res: sys.Run(task, powersys.RunOptions{
			HarvestPower: harvest,
			SkipRebound:  skipRebound,
			Fast:         fast,
		})}, nil
	})
	if err != nil {
		return err
	}

	tbl := &expt.Table{
		Title:  fmt.Sprintf("Starting-voltage sweep: %s", task.Name()),
		Header: []string{"V_start", "completed", "V_min", "V_final", "energy used"},
	}
	for i, r := range rows {
		completed := "POWER FAILURE"
		if r.res.Completed {
			completed = "yes"
		}
		tbl.Add(
			fmt.Sprintf("%.3f", voltages[i]),
			completed,
			fmt.Sprintf("%.3f", r.res.VMin),
			fmt.Sprintf("%.3f", r.res.VFinal),
			units.Format(r.res.EnergyUsed, "J"),
		)
	}
	return tbl.Render(stdout)
}

func pickLoad(peripheral, iStr, tStr, shape string) (load.Profile, error) {
	switch peripheral {
	case "gesture":
		return load.Gesture(), nil
	case "ble":
		return load.BLERadio(), nil
	case "mnist":
		return load.ComputeAccel(), nil
	case "lora":
		return load.LoRa(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown peripheral %q", peripheral)
	}
	i, err := units.Parse(iStr)
	if err != nil {
		return nil, fmt.Errorf("bad -i: %w", err)
	}
	t, err := units.Parse(tStr)
	if err != nil {
		return nil, fmt.Errorf("bad -t: %w", err)
	}
	if shape == "pulse" {
		return load.NewPulse(i, t), nil
	}
	return load.NewUniform(i, t), nil
}

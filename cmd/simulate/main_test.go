package main

import "testing"

func TestPickLoad(t *testing.T) {
	p, err := pickLoad("", "50mA", "100ms", "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.1 {
		t.Errorf("duration = %g", p.Duration())
	}
	p, err = pickLoad("", "25mA", "10ms", "pulse")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.11 {
		t.Errorf("pulse duration = %g", p.Duration())
	}
	for _, name := range []string{"gesture", "ble", "mnist", "lora"} {
		if _, err := pickLoad(name, "", "", ""); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := pickLoad("ghost", "", "", ""); err == nil {
		t.Error("unknown peripheral accepted")
	}
	if _, err := pickLoad("", "bad", "10ms", "uniform"); err == nil {
		t.Error("bad current accepted")
	}
	if _, err := pickLoad("", "5mA", "bad", "uniform"); err == nil {
		t.Error("bad duration accepted")
	}
}

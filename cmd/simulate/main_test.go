package main

import (
	"context"
	"strings"
	"testing"
)

func TestPickLoad(t *testing.T) {
	p, err := pickLoad("", "50mA", "100ms", "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.1 {
		t.Errorf("duration = %g", p.Duration())
	}
	p, err = pickLoad("", "25mA", "10ms", "pulse")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.11 {
		t.Errorf("pulse duration = %g", p.Duration())
	}
	for _, name := range []string{"gesture", "ble", "mnist", "lora"} {
		if _, err := pickLoad(name, "", "", ""); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := pickLoad("ghost", "", "", ""); err == nil {
		t.Error("unknown peripheral accepted")
	}
	if _, err := pickLoad("", "bad", "10ms", "uniform"); err == nil {
		t.Error("bad current accepted")
	}
	if _, err := pickLoad("", "5mA", "bad", "uniform"); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestParseVSweep(t *testing.T) {
	vs, err := parseVSweep("1.8, 2.0,2.4")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != 1.8 || vs[2] != 2.4 {
		t.Errorf("parsed %v", vs)
	}
	for _, bad := range []string{"", ",,", "1.8,abc", "0,2.0", "-1.5"} {
		if _, err := parseVSweep(bad); err == nil {
			t.Errorf("parseVSweep(%q) accepted", bad)
		}
	}
}

// TestRealMainErrors drives the binary's error paths: each bad invocation
// must exit non-zero with a usable message on stderr.
func TestRealMainErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"unknown flag", []string{"-frobnicate"}, 2, "flag provided but not defined"},
		{"bad flag value", []string{"-vstart", "high"}, 2, "invalid value"},
		{"negative workers", []string{"-workers", "-3"}, 2, "-workers must be >= 0"},
		{"unknown peripheral", []string{"-peripheral", "ghost"}, 1, `unknown peripheral "ghost"`},
		{"bad capacitance", []string{"-c", "xyz"}, 1, "bad -c"},
		{"bad decoupling", []string{"-dec", "junk"}, 1, "bad -dec"},
		{"bad vsweep entry", []string{"-vsweep", "1.8,abc"}, 1, "bad -vsweep entry"},
		{"empty vsweep", []string{"-vsweep", ",,"}, 1, "-vsweep lists no voltages"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := realMain(context.Background(), tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestRealMainTrace checks the single-run CSV path end to end.
func TestRealMainTrace(t *testing.T) {
	var stdout, stderr strings.Builder
	code := realMain(context.Background(), []string{"-i", "10mA", "-t", "10ms", "-vstart", "2.4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "t_s,") {
		t.Errorf("trace header wrong: %q", firstLine(stdout.String()))
	}
	if !strings.Contains(stderr.String(), "completed=true") {
		t.Errorf("summary missing: %q", stderr.String())
	}
}

// TestRealMainVSweep checks the parallel starting-voltage sweep: one table
// row per requested voltage, in input order, independent of worker count.
func TestRealMainVSweep(t *testing.T) {
	for _, workers := range []string{"1", "4"} {
		var stdout, stderr strings.Builder
		code := realMain(context.Background(),
			[]string{"-i", "50mA", "-t", "10ms", "-shape", "pulse", "-vsweep", "1.8,2.0,2.2,2.4", "-workers", workers},
			&stdout, &stderr)
		if code != 0 {
			t.Fatalf("workers=%s: exit = %d, stderr: %s", workers, code, stderr.String())
		}
		out := stdout.String()
		if !strings.Contains(out, "Starting-voltage sweep") {
			t.Errorf("workers=%s: missing table title:\n%s", workers, out)
		}
		for _, v := range []string{"1.800", "2.000", "2.200", "2.400"} {
			if !strings.Contains(out, v) {
				t.Errorf("workers=%s: missing row for %s V:\n%s", workers, v, out)
			}
		}
		// Rows must appear in input order regardless of scheduling.
		if strings.Index(out, "1.800") > strings.Index(out, "2.400") {
			t.Errorf("workers=%s: rows out of order:\n%s", workers, out)
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

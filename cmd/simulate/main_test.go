package main

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestPickLoad(t *testing.T) {
	p, err := pickLoad("", "50mA", "100ms", "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.1 {
		t.Errorf("duration = %g", p.Duration())
	}
	p, err = pickLoad("", "25mA", "10ms", "pulse")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 0.11 {
		t.Errorf("pulse duration = %g", p.Duration())
	}
	for _, name := range []string{"gesture", "ble", "mnist", "lora"} {
		if _, err := pickLoad(name, "", "", ""); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := pickLoad("ghost", "", "", ""); err == nil {
		t.Error("unknown peripheral accepted")
	}
	if _, err := pickLoad("", "bad", "10ms", "uniform"); err == nil {
		t.Error("bad current accepted")
	}
	if _, err := pickLoad("", "5mA", "bad", "uniform"); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestParseVSweep(t *testing.T) {
	vs, err := parseVSweep("1.8, 2.0,2.4")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != 1.8 || vs[2] != 2.4 {
		t.Errorf("parsed %v", vs)
	}
	for _, bad := range []string{"", ",,", "1.8,abc", "0,2.0", "-1.5"} {
		if _, err := parseVSweep(bad); err == nil {
			t.Errorf("parseVSweep(%q) accepted", bad)
		}
	}
}

// TestRealMainErrors drives the binary's error paths: each bad invocation
// must exit non-zero with a usable message on stderr.
func TestRealMainErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"unknown flag", []string{"-frobnicate"}, 2, "flag provided but not defined"},
		{"bad flag value", []string{"-vstart", "high"}, 2, "invalid value"},
		{"negative workers", []string{"-workers", "-3"}, 2, "-workers must be >= 0"},
		{"unknown peripheral", []string{"-peripheral", "ghost"}, 1, `unknown peripheral "ghost"`},
		{"bad capacitance", []string{"-c", "xyz"}, 1, "bad -c"},
		{"bad decoupling", []string{"-dec", "junk"}, 1, "bad -dec"},
		{"bad vsweep entry", []string{"-vsweep", "1.8,abc"}, 1, "bad -vsweep entry"},
		{"empty vsweep", []string{"-vsweep", ",,"}, 1, "-vsweep lists no voltages"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := realMain(context.Background(), tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestRealMainTrace checks the single-run CSV path end to end.
func TestRealMainTrace(t *testing.T) {
	var stdout, stderr strings.Builder
	code := realMain(context.Background(), []string{"-i", "10mA", "-t", "10ms", "-vstart", "2.4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "t_s,") {
		t.Errorf("trace header wrong: %q", firstLine(stdout.String()))
	}
	if !strings.Contains(stderr.String(), "completed=true") {
		t.Errorf("summary missing: %q", stderr.String())
	}
}

// TestRealMainVSweep checks the parallel starting-voltage sweep: one table
// row per requested voltage, in input order, independent of worker count.
func TestRealMainVSweep(t *testing.T) {
	for _, workers := range []string{"1", "4"} {
		var stdout, stderr strings.Builder
		code := realMain(context.Background(),
			[]string{"-i", "50mA", "-t", "10ms", "-shape", "pulse", "-vsweep", "1.8,2.0,2.2,2.4", "-workers", workers},
			&stdout, &stderr)
		if code != 0 {
			t.Fatalf("workers=%s: exit = %d, stderr: %s", workers, code, stderr.String())
		}
		out := stdout.String()
		if !strings.Contains(out, "Starting-voltage sweep") {
			t.Errorf("workers=%s: missing table title:\n%s", workers, out)
		}
		for _, v := range []string{"1.800", "2.000", "2.200", "2.400"} {
			if !strings.Contains(out, v) {
				t.Errorf("workers=%s: missing row for %s V:\n%s", workers, v, out)
			}
		}
		// Rows must appear in input order regardless of scheduling.
		if strings.Index(out, "1.800") > strings.Index(out, "2.400") {
			t.Errorf("workers=%s: rows out of order:\n%s", workers, out)
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestRealMainFaults checks the fault-injection flag end to end: a mid-run
// harvester dropout plus end-of-life aging must change the physics (lower
// final voltage than the clean run), and spec errors must be reported.
func TestRealMainFaults(t *testing.T) {
	runOnce := func(args ...string) (string, string, int) {
		var stdout, stderr strings.Builder
		code := realMain(context.Background(), args, &stdout, &stderr)
		return stdout.String(), stderr.String(), code
	}

	base := []string{"-i", "10mA", "-t", "100ms", "-vstart", "2.4", "-harvest", "0.02"}
	_, cleanErr, code := runOnce(base...)
	if code != 0 {
		t.Fatalf("clean run failed: %s", cleanErr)
	}
	faulted := append(append([]string{}, base...),
		"-faults", "dropout:at=10ms;age:life=1")
	_, faultErr, code := runOnce(faulted...)
	if code != 0 {
		t.Fatalf("faulted run failed: %s", faultErr)
	}
	vFinal := func(stderr string) float64 {
		i := strings.Index(stderr, "v_final=")
		if i < 0 {
			t.Fatalf("no v_final in summary: %q", stderr)
		}
		var v float64
		fmt.Sscanf(stderr[i:], "v_final=%f", &v)
		return v
	}
	if vc, vf := vFinal(cleanErr), vFinal(faultErr); !(vf < vc) {
		t.Errorf("faults had no effect: clean v_final=%g faulted v_final=%g", vc, vf)
	}

	if _, stderr, code := runOnce("-faults", "meteor:x=1"); code != 1 || !strings.Contains(stderr, "bad -faults") {
		t.Errorf("bad spec: code=%d stderr=%q", code, stderr)
	}

	// Fault injection composes with the concurrent -vsweep path.
	out, stderr, code := runOnce("-i", "50mA", "-t", "10ms", "-shape", "pulse",
		"-vsweep", "1.8,2.4", "-faults", "seed:3;noise:sigma=1mV;esr:factor=2", "-workers", "4")
	if code != 0 {
		t.Fatalf("faulted vsweep failed: %s", stderr)
	}
	if !strings.Contains(out, "Starting-voltage sweep") {
		t.Errorf("faulted vsweep output wrong:\n%s", out)
	}
}
